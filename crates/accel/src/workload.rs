//! FHE workload description and its lowering to per-VPU tasks.
//!
//! Homomorphic operations decompose naturally along the RNS dimension
//! (paper §II-A: a ciphertext is a `2 × N × L` tensor): every residue
//! polynomial's NTT, automorphism, or element-wise pass is an independent
//! vector task — exactly the parallelism the multi-VPU accelerator of
//! Fig 1(a) exploits.

use crate::AccelError;
use uvpu_core::auto_map::AutomorphismMapping;
use uvpu_core::ntt_map::NttPlan;
use uvpu_core::stats::CycleStats;
use uvpu_core::vpu::Vpu;
use uvpu_math::modular::Modulus;
use uvpu_math::primes::ntt_prime;

/// A high-level homomorphic operation (one paper §II-A primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FheOp {
    /// Homomorphic addition of two ciphertexts.
    HAdd {
        /// Ring degree.
        n: usize,
        /// RNS limb count `L + 1`.
        limbs: usize,
    },
    /// Homomorphic multiplication with relinearization and rescale.
    HMult {
        /// Ring degree.
        n: usize,
        /// RNS limb count.
        limbs: usize,
    },
    /// Homomorphic rotation (automorphism + keyswitch).
    HRot {
        /// Ring degree.
        n: usize,
        /// RNS limb count.
        limbs: usize,
    },
    /// A bare forward NTT (for microbenchmarks).
    Ntt {
        /// Transform length.
        n: usize,
    },
    /// A bare automorphism (for microbenchmarks).
    Automorphism {
        /// Element count.
        n: usize,
    },
}

/// One schedulable unit of vector work: a single residue polynomial's
/// pass through a VPU, plus the bytes it moves over the NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// What the VPU executes.
    pub kind: TaskKind,
    /// Ring degree the task operates on.
    pub n: usize,
    /// Bytes fetched from / written to the global SRAM over the NoC.
    pub noc_bytes: usize,
}

/// The vector kernel a task runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Forward or inverse negacyclic NTT.
    Ntt,
    /// Automorphism (single-pass-per-column permutation).
    Automorphism,
    /// `passes` element-wise vector passes over the polynomial.
    Elementwise {
        /// Number of full-polynomial element-wise passes.
        passes: usize,
    },
}

impl TaskKind {
    /// Stable display name for reports and traces (the element-wise
    /// variant folds its pass count in).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            TaskKind::Ntt => "ntt".to_string(),
            TaskKind::Automorphism => "automorphism".to_string(),
            TaskKind::Elementwise { passes } => format!("ewise\u{00d7}{passes}"),
        }
    }
}

impl FheOp {
    /// Lowers the operation to independent tasks (one per residue
    /// polynomial pass), following the standard CKKS dataflow:
    ///
    /// - `HAdd`: 2 element-wise passes per limb;
    /// - `HMult`: 4 forward NTTs (both ciphertexts' parts), 3 Hadamard
    ///   passes, `limbs` keyswitch digit NTTs + 2·`limbs` accumulation
    ///   passes, 2 inverse NTTs, and 2 rescale passes per limb;
    /// - `HRot`: 2 automorphism passes per limb plus the same keyswitch
    ///   pipeline as `HMult`'s relinearization.
    #[must_use]
    pub fn lower(&self) -> Vec<Task> {
        let poly_bytes = |n: usize| n * 8;
        match *self {
            FheOp::HAdd { n, limbs } => (0..2 * limbs)
                .map(|_| Task {
                    kind: TaskKind::Elementwise { passes: 1 },
                    n,
                    noc_bytes: 3 * poly_bytes(n), // two reads + one write
                })
                .collect(),
            FheOp::HMult { n, limbs } => {
                let mut tasks = Vec::new();
                for _ in 0..limbs {
                    // Forward NTTs of the four input polynomials.
                    for _ in 0..4 {
                        tasks.push(Task {
                            kind: TaskKind::Ntt,
                            n,
                            noc_bytes: 2 * poly_bytes(n),
                        });
                    }
                    // Tensor product (d0, d1, d2).
                    tasks.push(Task {
                        kind: TaskKind::Elementwise { passes: 3 },
                        n,
                        noc_bytes: 3 * poly_bytes(n),
                    });
                    // Keyswitch: one digit NTT + two key-product
                    // accumulations per digit.
                    for _ in 0..limbs {
                        tasks.push(Task {
                            kind: TaskKind::Ntt,
                            n,
                            noc_bytes: 2 * poly_bytes(n),
                        });
                        tasks.push(Task {
                            kind: TaskKind::Elementwise { passes: 2 },
                            n,
                            noc_bytes: 3 * poly_bytes(n),
                        });
                    }
                    // Back to coefficients + rescale.
                    for _ in 0..2 {
                        tasks.push(Task {
                            kind: TaskKind::Ntt,
                            n,
                            noc_bytes: 2 * poly_bytes(n),
                        });
                    }
                    tasks.push(Task {
                        kind: TaskKind::Elementwise { passes: 2 },
                        n,
                        noc_bytes: 2 * poly_bytes(n),
                    });
                }
                tasks
            }
            FheOp::HRot { n, limbs } => {
                let mut tasks = Vec::new();
                for _ in 0..limbs {
                    // Automorphism on both ciphertext polynomials.
                    for _ in 0..2 {
                        tasks.push(Task {
                            kind: TaskKind::Automorphism,
                            n,
                            noc_bytes: 2 * poly_bytes(n),
                        });
                    }
                    // Keyswitch pipeline, as in HMult.
                    for _ in 0..limbs {
                        tasks.push(Task {
                            kind: TaskKind::Ntt,
                            n,
                            noc_bytes: 2 * poly_bytes(n),
                        });
                        tasks.push(Task {
                            kind: TaskKind::Elementwise { passes: 2 },
                            n,
                            noc_bytes: 3 * poly_bytes(n),
                        });
                    }
                }
                tasks
            }
            FheOp::Ntt { n } => vec![Task {
                kind: TaskKind::Ntt,
                n,
                noc_bytes: 2 * poly_bytes(n),
            }],
            FheOp::Automorphism { n } => vec![Task {
                kind: TaskKind::Automorphism,
                n,
                noc_bytes: 2 * poly_bytes(n),
            }],
        }
    }
}

impl FheOp {
    /// Single-VPU latency of the whole operation in pipeline beats: the
    /// sum of its lowered tasks' measured cycles (every task executes on
    /// the bit-exact simulator). At the paper's 1 GHz clock one beat is
    /// one nanosecond.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors from the VPU simulator.
    pub fn latency_beats(&self, lanes: usize) -> Result<u64, AccelError> {
        let tasks = self.lower();
        let memo = premeasure(&tasks, lanes)?;
        let mut total = 0u64;
        for task in &tasks {
            total += memo[&(task.kind, task.n)].total();
        }
        Ok(total)
    }
}

/// Measures every distinct `(kind, n)` shape appearing in `tasks`, in
/// parallel across host threads when more than one is available.
///
/// The simulator is deterministic, so tasks of the same shape cost the
/// same cycles; measuring each shape once and fanning the independent
/// measurements out over [`uvpu_par`] workers is bit-exact regardless of
/// thread count. Shapes are measured in first-occurrence task order and
/// the first failing shape's error is returned, matching what a
/// sequential memoized sweep would report.
///
/// # Errors
///
/// As [`measure_task`], for the first failing shape in task order.
pub fn premeasure(
    tasks: &[Task],
    lanes: usize,
) -> Result<std::collections::HashMap<(TaskKind, usize), CycleStats>, AccelError> {
    let mut shapes: Vec<(TaskKind, usize)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for t in tasks {
        if seen.insert((t.kind, t.n)) {
            shapes.push((t.kind, t.n));
        }
    }
    let measured = uvpu_par::par_map_indexed(shapes.len(), |i| {
        let (kind, n) = shapes[i];
        measure_task(
            &Task {
                kind,
                n,
                noc_bytes: 0,
            },
            lanes,
        )
    });
    let mut memo = std::collections::HashMap::with_capacity(shapes.len());
    for (shape, result) in shapes.into_iter().zip(measured) {
        memo.insert(shape, result?);
    }
    Ok(memo)
}

/// Measures one task's VPU cycle cost by actually executing the kernel on
/// a simulated VPU (bit-exact; the returned stats are the real pass
/// counts, not an estimate).
///
/// # Errors
///
/// [`AccelError::Core`] when the kernel cannot be mapped (e.g. `n`
/// smaller than the lane count for automorphism).
pub fn measure_task(task: &Task, lanes: usize) -> Result<CycleStats, AccelError> {
    let n = task.n;
    let q = Modulus::new(ntt_prime(50, n.max(lanes * 2)).map_err(uvpu_core::CoreError::Math)?)
        .map_err(uvpu_core::CoreError::Math)?;
    let mut vpu = Vpu::new(lanes, q, 8)?;
    match task.kind {
        TaskKind::Ntt => {
            let plan = NttPlan::cached(q, n, lanes)?;
            let data: Vec<u64> = (0..n as u64).collect();
            let run = plan.execute_forward_negacyclic(&mut vpu, &data)?;
            Ok(run.stats)
        }
        TaskKind::Automorphism => {
            let plan = AutomorphismMapping::cached(n, lanes, 5, 0)?;
            let data: Vec<u64> = (0..n as u64).collect();
            let run = plan.execute(&mut vpu, &data)?;
            Ok(run.stats)
        }
        TaskKind::Elementwise { passes } => {
            // One element-wise beat per lane-width column per pass.
            let cols = (n / lanes).max(1) as u64;
            Ok(CycleStats {
                butterfly: 0,
                elementwise: cols * passes as u64,
                network_move: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadd_lowers_to_elementwise_only() {
        let tasks = FheOp::HAdd {
            n: 1 << 12,
            limbs: 3,
        }
        .lower();
        assert_eq!(tasks.len(), 6);
        assert!(tasks
            .iter()
            .all(|t| matches!(t.kind, TaskKind::Elementwise { passes: 1 })));
    }

    #[test]
    fn hmult_task_count_scales_quadratically_with_limbs() {
        let t2 = FheOp::HMult {
            n: 1 << 10,
            limbs: 2,
        }
        .lower()
        .len();
        let t4 = FheOp::HMult {
            n: 1 << 10,
            limbs: 4,
        }
        .lower()
        .len();
        // Keyswitch digits make the count quadratic in limbs.
        assert!(t4 > 2 * t2);
    }

    #[test]
    fn measured_ntt_matches_plan_stats() {
        let task = Task {
            kind: TaskKind::Ntt,
            n: 1 << 10,
            noc_bytes: 0,
        };
        let stats = measure_task(&task, 64).unwrap();
        assert!(stats.butterfly > 0);
        assert!(stats.utilization() > 0.6 && stats.utilization() < 0.95);
    }

    #[test]
    fn measured_automorphism_is_pure_movement() {
        let task = Task {
            kind: TaskKind::Automorphism,
            n: 1 << 10,
            noc_bytes: 0,
        };
        let stats = measure_task(&task, 64).unwrap();
        assert_eq!(stats.compute(), 0);
        assert_eq!(stats.network_move, (1 << 10) / 64);
    }

    #[test]
    fn elementwise_task_cost_is_column_count() {
        let task = Task {
            kind: TaskKind::Elementwise { passes: 3 },
            n: 1 << 10,
            noc_bytes: 0,
        };
        let stats = measure_task(&task, 64).unwrap();
        assert_eq!(stats.elementwise, 3 * (1 << 10) / 64);
    }
}
