//! The accelerator machine model: VPUs, a ring NoC, global SRAM, and a
//! list scheduler (paper Fig 1(a)).

use crate::config::AcceleratorConfig;
use crate::workload::{FheOp, Task};
use crate::AccelError;
use std::fmt;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace;

/// Execution report for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelReport {
    /// Total cycles until the last VPU finishes (makespan).
    pub makespan: u64,
    /// Per-VPU busy cycles.
    pub vpu_busy: Vec<u64>,
    /// Aggregate VPU pipeline statistics.
    pub vpu_stats: CycleStats,
    /// Total NoC transfer cycles (bandwidth + hop latency).
    pub noc_cycles: u64,
    /// Total bytes moved between SRAM and VPUs.
    pub sram_traffic_bytes: u64,
    /// Number of tasks executed.
    pub task_count: usize,
    /// Kernel measurements answered from the memo cache (same-shape
    /// tasks cost the same cycles, so only the first of each shape runs
    /// the bit-exact simulator).
    pub memo_hits: u64,
    /// Kernel measurements that had to run the simulator.
    pub memo_misses: u64,
}

impl AccelReport {
    /// Mean VPU utilization: busy cycles over `makespan × vpu_count`.
    #[must_use]
    pub fn vpu_utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        let busy: u64 = self.vpu_busy.iter().sum();
        busy as f64 / (self.makespan as f64 * self.vpu_busy.len() as f64)
    }

    /// Fraction of kernel measurements served from the memo cache.
    #[must_use]
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            return 0.0;
        }
        self.memo_hits as f64 / total as f64
    }
}

impl fmt::Display for AccelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accelerator: {} tasks on {} VPUs, makespan {} cycles ({:.1}% VPU busy)",
            self.task_count,
            self.vpu_busy.len(),
            self.makespan,
            100.0 * self.vpu_utilization()
        )?;
        writeln!(f, "  pipeline: {}", self.vpu_stats)?;
        writeln!(
            f,
            "  noc: {} cycles, {} bytes SRAM traffic",
            self.noc_cycles, self.sram_traffic_bytes
        )?;
        write!(
            f,
            "  kernel memo: {} hits, {} misses ({:.1}% hit rate)",
            self.memo_hits,
            self.memo_misses,
            100.0 * self.memo_hit_rate()
        )
    }
}

/// The multi-VPU accelerator simulator.
///
/// Tasks are scheduled greedily onto the earliest-available VPU; each
/// task's VPU cost comes from actually running the kernel on the
/// bit-exact VPU simulator, and its NoC cost from the configured ring
/// bandwidth and hop latency. NoC transfers overlap with compute of
/// *other* tasks but serialize with their own task (load → compute →
/// store).
///
/// # Example
///
/// ```
/// use uvpu_accel::config::AcceleratorConfig;
/// use uvpu_accel::machine::Accelerator;
/// use uvpu_accel::workload::FheOp;
///
/// # fn main() -> Result<(), uvpu_accel::AccelError> {
/// let mut accel = Accelerator::new(AcceleratorConfig::default())?;
/// let report = accel.run(&[FheOp::HMult { n: 1 << 12, limbs: 3 }])?;
/// assert!(report.makespan > 0);
/// assert!(report.vpu_utilization() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AcceleratorConfig,
}

impl Accelerator {
    /// Creates an accelerator from a validated configuration.
    ///
    /// # Errors
    ///
    /// [`AccelError::InvalidConfig`] on a bad configuration.
    pub fn new(config: AcceleratorConfig) -> Result<Self, AccelError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    #[must_use]
    pub const fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// NoC cycles for one transfer of `bytes` between the SRAM and a VPU
    /// `hops` ring positions away.
    #[must_use]
    pub fn noc_cycles(&self, bytes: usize, hops: usize) -> u64 {
        bytes.div_ceil(self.config.noc_bytes_per_cycle) as u64
            + self.config.noc_hop_latency * hops as u64
    }

    /// Runs a workload and returns the report.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors from the VPU simulator, or a working set
    /// exceeding the SRAM capacity.
    pub fn run(&mut self, ops: &[FheOp]) -> Result<AccelReport, AccelError> {
        let tasks: Vec<Task> = ops.iter().flat_map(FheOp::lower).collect();
        self.run_tasks(&tasks)
    }

    /// Runs an explicit task list.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::run`].
    pub fn run_tasks(&mut self, tasks: &[Task]) -> Result<AccelReport, AccelError> {
        // Working-set check: the largest single task operand must fit.
        for t in tasks {
            if t.noc_bytes > self.config.sram_bytes {
                return Err(AccelError::SramOverflow {
                    needed: t.noc_bytes,
                    capacity: self.config.sram_bytes,
                });
            }
        }
        let v = self.config.vpu_count;
        let mut vpu_free_at = vec![0u64; v];
        let mut vpu_busy = vec![0u64; v];
        let mut agg = CycleStats::new();
        let mut noc_cycles = 0u64;
        let mut traffic = 0u64;
        // Memoize kernel measurements: tasks of the same shape cost the
        // same cycles (the simulator is deterministic). The distinct
        // shapes are measured up front — in parallel when host threads
        // are available — and the sweep below replays the sequential
        // hit/miss accounting (first occurrence of a shape = miss).
        let memo = crate::workload::premeasure(tasks, self.config.lanes)?;
        let mut first_seen: std::collections::HashSet<(crate::workload::TaskKind, usize)> =
            std::collections::HashSet::new();
        let mut memo_hits = 0u64;
        let mut memo_misses = 0u64;
        // With a global trace sink installed, every scheduled task emits
        // a span on its VPU slot's track: the NoC transfer followed by
        // the compute window, timestamped from the scheduler timeline.
        let tracing = trace::global_enabled();
        if tracing {
            // One `accel.batch` parent per slot track wraps the whole
            // schedule, so tree-building sinks key the task spans below
            // under `accel.batch/…` and the batch end timestamp measures
            // the slot's total occupancy.
            for slot in 0..v {
                trace::global_span_begin_at(slot as u32, "accel.batch", 0);
            }
        }
        for task in tasks {
            if first_seen.insert((task.kind, task.n)) {
                memo_misses += 1;
            } else {
                memo_hits += 1;
            }
            let stats = memo[&(task.kind, task.n)];
            // Earliest-available VPU (list scheduling).
            let (slot, _) = vpu_free_at
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .expect("at least one VPU");
            let hops = slot % (v / 2 + 1) + 1; // ring distance from the SRAM port
            let transfer = self.noc_cycles(task.noc_bytes, hops);
            let compute = stats.total();
            if tracing {
                let track = slot as u32;
                let start = vpu_free_at[slot];
                trace::global_span_at(track, "noc.transfer", start, start + transfer);
                trace::global_span_at(
                    track,
                    // The `task.` prefix marks cycle-timestamped scheduler
                    // spans for per-task attribution downstream.
                    &format!("task.{} n={}", task.kind.name(), task.n),
                    start + transfer,
                    start + transfer + compute,
                );
            }
            vpu_free_at[slot] += transfer + compute;
            vpu_busy[slot] += compute;
            noc_cycles += transfer;
            traffic += task.noc_bytes as u64;
            agg += stats;
        }
        if tracing {
            for (slot, &free_at) in vpu_free_at.iter().enumerate() {
                trace::global_span_end_at(slot as u32, "accel.batch", free_at);
            }
        }
        Ok(AccelReport {
            makespan: vpu_free_at.iter().copied().max().unwrap_or(0),
            vpu_busy,
            vpu_stats: agg,
            noc_cycles,
            sram_traffic_bytes: traffic,
            task_count: tasks.len(),
            memo_hits,
            memo_misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(vpus: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            vpu_count: vpus,
            ..AcceleratorConfig::default()
        }
    }

    #[test]
    fn more_vpus_shrink_makespan() {
        let ops = [FheOp::HMult {
            n: 1 << 10,
            limbs: 3,
        }];
        let r1 = Accelerator::new(config(1)).unwrap().run(&ops).unwrap();
        let r4 = Accelerator::new(config(4)).unwrap().run(&ops).unwrap();
        let r8 = Accelerator::new(config(8)).unwrap().run(&ops).unwrap();
        assert!(r4.makespan < r1.makespan);
        assert!(r8.makespan <= r4.makespan);
        // Total work is conserved regardless of the VPU count.
        assert_eq!(r1.vpu_stats, r4.vpu_stats);
        assert_eq!(r1.sram_traffic_bytes, r4.sram_traffic_bytes);
    }

    #[test]
    fn hadd_is_cheap_hmult_is_not() {
        let mut accel = Accelerator::new(config(4)).unwrap();
        let add = accel
            .run(&[FheOp::HAdd {
                n: 1 << 10,
                limbs: 3,
            }])
            .unwrap();
        let mult = accel
            .run(&[FheOp::HMult {
                n: 1 << 10,
                limbs: 3,
            }])
            .unwrap();
        // HMult's keyswitch pipeline dwarfs HAdd's element-wise passes
        // (NoC transfer time is common to both, so the gap is bounded).
        assert!(mult.makespan > 3 * add.makespan);
    }

    #[test]
    fn rotation_workload_is_movement_heavy() {
        let mut accel = Accelerator::new(config(2)).unwrap();
        let r = accel.run(&[FheOp::Automorphism { n: 1 << 12 }]).unwrap();
        assert_eq!(r.vpu_stats.compute(), 0);
        assert!(r.vpu_stats.network_move > 0);
    }

    #[test]
    fn determinism_and_memoization() {
        let ops = [
            FheOp::HRot {
                n: 1 << 10,
                limbs: 2,
            },
            FheOp::HAdd {
                n: 1 << 10,
                limbs: 2,
            },
        ];
        let a = Accelerator::new(config(3)).unwrap().run(&ops).unwrap();
        let b = Accelerator::new(config(3)).unwrap().run(&ops).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn memo_counters_add_up() {
        let ops = [
            FheOp::HMult {
                n: 1 << 10,
                limbs: 3,
            },
            FheOp::HMult {
                n: 1 << 10,
                limbs: 3,
            },
        ];
        let r = Accelerator::new(config(4)).unwrap().run(&ops).unwrap();
        assert_eq!(
            (r.memo_hits + r.memo_misses) as usize,
            r.task_count,
            "every task is either a hit or a miss"
        );
        // Two identical HMults share shapes: only (ntt, n) and the
        // distinct ewise shapes miss.
        assert!(r.memo_misses <= 4);
        assert!(r.memo_hits > r.memo_misses);
        assert!(r.memo_hit_rate() > 0.5);
        let text = r.to_string();
        assert!(text.contains("kernel memo"), "{text}");
        assert!(text.contains("makespan"), "{text}");
    }

    #[test]
    fn scheduler_emits_task_spans_when_traced() {
        use uvpu_core::trace::{self, RingBufferSink, SharedSink, TraceEvent};
        let shared = SharedSink::new(RingBufferSink::new(256));
        trace::install_global(Box::new(shared.clone()));
        let r = Accelerator::new(config(2))
            .unwrap()
            .run(&[
                FheOp::Ntt { n: 1 << 10 },
                FheOp::Automorphism { n: 1 << 10 },
            ])
            .unwrap();
        trace::take_global();
        shared.with(|s| {
            let names: Vec<String> = s
                .events()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::SpanBegin { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect();
            assert!(
                names.iter().any(|n| n.starts_with("task.ntt n=1024")),
                "{names:?}"
            );
            assert!(
                names.iter().any(|n| n.starts_with("task.automorphism")),
                "{names:?}"
            );
            assert!(names.iter().any(|n| n == "noc.transfer"), "{names:?}");
            // Span ends line up with the report's timeline.
            let max_end = s
                .events()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::SpanEnd { ts, .. } => Some(*ts),
                    _ => None,
                })
                .max()
                .unwrap();
            assert_eq!(max_end, r.makespan);
        });
    }

    #[test]
    fn sram_overflow_is_reported() {
        let mut cfg = config(2);
        cfg.sram_bytes = 1024;
        let mut accel = Accelerator::new(cfg).unwrap();
        let err = accel.run(&[FheOp::Ntt { n: 1 << 12 }]);
        assert!(matches!(err, Err(AccelError::SramOverflow { .. })));
    }

    #[test]
    fn utilization_is_a_fraction() {
        let mut accel = Accelerator::new(config(4)).unwrap();
        let r = accel
            .run(&[FheOp::HMult {
                n: 1 << 12,
                limbs: 2,
            }])
            .unwrap();
        let u = r.vpu_utilization();
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }
}
