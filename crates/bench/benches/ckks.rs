//! Criterion benchmarks of the CKKS workload generator: the homomorphic
//! primitives whose kernels the VPU accelerates.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use uvpu_ckks::encoder::{Encoder, C64};
use uvpu_ckks::keys::KeyGenerator;
use uvpu_ckks::ops::Evaluator;
use uvpu_ckks::params::{CkksContext, CkksParams};

fn ckks_primitives(c: &mut Criterion) {
    let ctx = CkksContext::new(CkksParams::new(1 << 8, 3, 40).unwrap()).unwrap();
    let encoder = Encoder::new(&ctx);
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(1));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk).unwrap();
    let rlk = kg.relin_key(&sk).unwrap();
    let gks = kg.galois_keys(&sk, &[1]).unwrap();
    let eval = Evaluator::new(&ctx);
    let mut rng = StdRng::seed_from_u64(2);

    let values: Vec<C64> = (0..encoder.slot_count())
        .map(|j| C64::from(j as f64 * 0.01))
        .collect();
    let pt = encoder.encode(&ctx, 3, &values).unwrap();
    let ct = eval.encrypt(&pk, &pt, &mut rng).unwrap();

    let mut group = c.benchmark_group("ckks_n256_l3");
    group.sample_size(10);
    group.bench_function("hadd", |b| {
        b.iter(|| black_box(eval.add(&ct, &ct).unwrap()));
    });
    group.bench_function("hmult_relin", |b| {
        b.iter(|| black_box(eval.mul(&ct, &ct, &rlk).unwrap()));
    });
    group.bench_function("hrot", |b| {
        b.iter(|| black_box(eval.rotate(&ct, 1, &gks).unwrap()));
    });
    group.bench_function("rescale", |b| {
        let prod = eval.mul(&ct, &ct, &rlk).unwrap();
        b.iter(|| black_box(eval.rescale(&prod).unwrap()));
    });
    group.bench_function("encrypt", |b| {
        b.iter(|| black_box(eval.encrypt(&pk, &pt, &mut rng).unwrap()));
    });
    group.bench_function("decrypt", |b| {
        b.iter(|| black_box(eval.decrypt(&sk, &ct).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, ckks_primitives);
criterion_main!(benches);
