//! Criterion benchmarks of the lazy-reduction kernel layer: Harvey
//! lazy butterflies vs the fully-reduced reference transforms, and the
//! fused `ntt_pointwise_intt` pipeline vs the three-pass equivalent.
//!
//! The allocation-per-op accounting lives in the `bench_kernels` binary
//! (it needs a counting global allocator); these benchmarks only compare
//! wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uvpu_math::modular::Modulus;
use uvpu_math::ntt::NttTable;
use uvpu_math::primes::ntt_prime;
use uvpu_math::{kernel, pool};

fn lazy_vs_reference_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_forward");
    for log_n in [10u32, 12] {
        let n = 1usize << log_n;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let table = NttTable::new(q, n).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 7 + 3)).collect();
        group.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, _| {
            b.iter(|| {
                let mut a = pool::take_copy(&data);
                kernel::forward_inplace(&table, &mut a);
                black_box(&a);
                pool::recycle(a);
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| {
                let mut a = pool::take_copy(&data);
                table.forward_inplace_reference(&mut a);
                black_box(&a);
                pool::recycle(a);
            });
        });
    }
    group.finish();
}

fn fourstep_vs_direct_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_forward_large");
    for log_n in [14u32, 16, 17] {
        let n = 1usize << log_n;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let table = NttTable::new(q, n).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 7 + 3)).collect();
        // `forward_inplace` dispatches to the cache-blocked four-step
        // path at these sizes; `forward_inplace_direct` is the
        // single-array stage loop it replaces.
        group.bench_with_input(BenchmarkId::new("four_step", n), &n, |b, _| {
            b.iter(|| {
                let mut a = pool::take_copy(&data);
                kernel::forward_inplace(&table, &mut a);
                black_box(&a);
                pool::recycle(a);
            });
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| {
                let mut a = pool::take_copy(&data);
                kernel::forward_inplace_direct(&table, &mut a);
                black_box(&a);
                pool::recycle(a);
            });
        });
    }
    group.finish();
}

fn fused_vs_three_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("negacyclic_mul");
    for log_n in [10u32, 12] {
        let n = 1usize << log_n;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let table = NttTable::new(q, n).unwrap();
        let x: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 7 + 3)).collect();
        let y: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 13 + 5)).collect();
        group.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
            b.iter(|| {
                let mut out = pool::take_scratch(n);
                kernel::ntt_pointwise_intt(&table, &x, &y, &mut out);
                black_box(&out);
                pool::recycle(out);
            });
        });
        group.bench_with_input(BenchmarkId::new("three_pass", n), &n, |b, _| {
            b.iter(|| {
                let mut fx = x.clone();
                let mut fy = y.clone();
                table.forward_inplace_reference(&mut fx);
                table.forward_inplace_reference(&mut fy);
                for (a, &bv) in fx.iter_mut().zip(&fy) {
                    *a = q.mul(*a, bv);
                }
                table.inverse_inplace_reference(&mut fx);
                black_box(fx)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    lazy_vs_reference_forward,
    fourstep_vs_direct_forward,
    fused_vs_three_pass
);
criterion_main!(benches);
