//! Criterion benchmarks of the automorphism path: control-word
//! generation (the §IV-B decomposition), single-pass execution on the
//! VPU, and the coefficient-domain golden model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uvpu_core::auto_map::AutomorphismMapping;
use uvpu_core::control::{AutomorphismControlTable, ShiftControls};
use uvpu_core::vpu::Vpu;
use uvpu_math::automorphism::{apply_galois_coeff, AffineMap};
use uvpu_math::modular::Modulus;
use uvpu_math::primes::ntt_prime;

fn control_word_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("control_word");
    for m in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("from_affine", m), &m, |b, &m| {
            let map = AffineMap::new(m, 5, 3).unwrap();
            b.iter(|| black_box(ShiftControls::from_affine(&map)));
        });
        group.bench_with_input(BenchmarkId::new("full_table", m), &m, |b, &m| {
            b.iter(|| black_box(AutomorphismControlTable::new(m).unwrap()));
        });
    }
    group.finish();
}

fn vpu_automorphism(c: &mut Criterion) {
    let mut group = c.benchmark_group("vpu_automorphism");
    group.sample_size(10);
    for log_n in [10u32, 12, 14] {
        let n = 1usize << log_n;
        let m = 64;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let plan = AutomorphismMapping::new(n, m, 5, 0).unwrap();
        let mut vpu = Vpu::new(m, q, 8).unwrap();
        let data: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(plan.execute(&mut vpu, &data).unwrap()));
        });
    }
    group.finish();
}

fn golden_model_galois(c: &mut Criterion) {
    let n = 1usize << 12;
    let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
    let data: Vec<u64> = (0..n as u64).collect();
    c.bench_function("galois_coeff_4096", |b| {
        b.iter(|| black_box(apply_galois_coeff(&data, 5, &q)));
    });
}

criterion_group!(
    benches,
    control_word_generation,
    vpu_automorphism,
    golden_model_galois
);
criterion_main!(benches);
