//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **Barrett vs Montgomery vs Shoup** modular multiplication — the
//!    paper picks Barrett lanes (§III-A) because keyswitch base
//!    conversions arrive in plain representation; Montgomery would pay
//!    domain conversions around each. The bench shows the raw multiplier
//!    costs and the conversion-laden pattern.
//! 2. **Merged vs sequential automorphism shifts** — the §IV-B merging
//!    collapses the recursive shift levels into one traversal; the
//!    unmerged alternative pays one traversal per level.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uvpu_core::control::ShiftControls;
use uvpu_core::network::InterLaneNetwork;
use uvpu_math::automorphism::{AffineMap, ShiftDecomposition};
use uvpu_math::modular::{Modulus, ShoupMul};
use uvpu_math::montgomery::MontgomeryContext;

fn modular_multiplier_ablation(c: &mut Criterion) {
    let q = 0x0fff_ffff_fffc_0001u64;
    let barrett = Modulus::new(q).unwrap();
    let mont = MontgomeryContext::new(q).unwrap();
    let xs: Vec<u64> = (0..4096u64).map(|i| i * 0x9e37_79b9 % q).collect();
    let w = barrett.reduce_u64(0x1234_5678_9abc_def0);
    let shoup = ShoupMul::new(w, &barrett);

    let mut group = c.benchmark_group("modmul_4096");
    group.bench_function("barrett", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &xs {
                acc ^= barrett.mul(x, w);
            }
            black_box(acc)
        });
    });
    group.bench_function("shoup_const", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &xs {
                acc ^= shoup.mul(x, &barrett);
            }
            black_box(acc)
        });
    });
    group.bench_function("montgomery_resident", |b| {
        // Operands already in Montgomery form (best case for Montgomery).
        let wm = mont.to_montgomery(w);
        let xm: Vec<u64> = xs.iter().map(|&x| mont.to_montgomery(x)).collect();
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &xm {
                acc ^= mont.mul(x, wm);
            }
            black_box(acc)
        });
    });
    group.bench_function("montgomery_base_conversion", |b| {
        // The FHE keyswitch pattern the paper cites: operands arrive in
        // plain representation per base conversion, forcing domain
        // conversions around every multiply.
        let wm = mont.to_montgomery(w);
        b.iter(|| {
            let mut acc = 0u64;
            for &x in &xs {
                let xm = mont.to_montgomery(x);
                acc ^= mont.from_montgomery(mont.mul(xm, wm));
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn merged_vs_sequential_automorphism(c: &mut Criterion) {
    let m = 64;
    let net = InterLaneNetwork::new(m).unwrap();
    let map = AffineMap::new(m, 5, 7).unwrap();
    let data: Vec<u64> = (0..m as u64).collect();

    let mut group = c.benchmark_group("automorphism_pass_64");
    group.bench_function("merged_single_traversal", |b| {
        let controls = ShiftControls::from_affine(&map);
        b.iter(|| black_box(net.shift_pass(&data, &controls)));
    });
    group.bench_function("sequential_per_level_traversals", |b| {
        // One traversal per recursion level: the cost the merging avoids.
        let dec = ShiftDecomposition::decompose(&map);
        let levels = 6usize;
        let per_level: Vec<ShiftControls> = (0..levels)
            .map(|l| {
                let bits: Vec<Vec<bool>> = (0..levels)
                    .map(|k| {
                        if k == l {
                            dec.level_bits(k).to_vec()
                        } else {
                            vec![false; 1 << k]
                        }
                    })
                    .collect();
                ShiftControls::from_bits(m, bits).unwrap()
            })
            .collect();
        b.iter(|| {
            let mut cur = data.clone();
            for controls in per_level.iter().rev() {
                cur = net.shift_pass(&cur, controls);
            }
            black_box(cur)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    modular_multiplier_ablation,
    merged_vs_sequential_automorphism
);
criterion_main!(benches);
