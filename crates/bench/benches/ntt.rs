//! Criterion benchmarks of the NTT kernels: the golden-model transform,
//! the VPU-simulated multi-dimensional pipeline, and the lane-resident
//! small NTT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uvpu_core::ntt_map::{NttPlan, SmallNtt};
use uvpu_core::vpu::Vpu;
use uvpu_math::modular::Modulus;
use uvpu_math::ntt::NttTable;
use uvpu_math::primes::ntt_prime;

fn golden_model_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("golden_ntt_forward");
    for log_n in [10u32, 12, 14] {
        let n = 1usize << log_n;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let table = NttTable::new(q, n).unwrap();
        let data: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut a = data.clone();
                table.forward_inplace(&mut a);
                black_box(a)
            });
        });
    }
    group.finish();
}

fn vpu_simulated_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("vpu_ntt_negacyclic");
    group.sample_size(10);
    for log_n in [10u32, 12] {
        let n = 1usize << log_n;
        let m = 64;
        let q = Modulus::new(ntt_prime(50, n).unwrap()).unwrap();
        let plan = NttPlan::new(q, n, m).unwrap();
        let mut vpu = Vpu::new(m, q, 8).unwrap();
        let data: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(plan.execute_forward_negacyclic(&mut vpu, &data).unwrap()));
        });
    }
    group.finish();
}

fn lane_resident_small_ntt(c: &mut Criterion) {
    let m = 64;
    let q = Modulus::new(ntt_prime(50, m).unwrap()).unwrap();
    let ntt = SmallNtt::new(q, m).unwrap();
    let mut vpu = Vpu::new(m, q, 4).unwrap();
    let data: Vec<u64> = (0..m as u64).collect();
    c.bench_function("small_ntt_64_lanes", |b| {
        b.iter(|| {
            vpu.load(0, &data).unwrap();
            ntt.run_forward(&mut vpu, 0).unwrap();
            black_box(vpu.store(0).unwrap())
        });
    });
}

criterion_group!(
    benches,
    golden_model_ntt,
    vpu_simulated_ntt,
    lane_resident_small_ntt
);
criterion_main!(benches);
