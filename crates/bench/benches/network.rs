//! Criterion benchmarks of the inter-lane network primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uvpu_core::control::ShiftControls;
use uvpu_core::network::{CgDirection, InterLaneNetwork};

fn network_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_pass");
    for m in [64usize, 256] {
        let net = InterLaneNetwork::new(m).unwrap();
        let data: Vec<u64> = (0..m as u64).collect();
        let controls = ShiftControls::from_rotation(m, 13);
        group.bench_with_input(BenchmarkId::new("cg", m), &m, |b, _| {
            b.iter(|| black_box(net.cg_pass(&data, CgDirection::Dif)));
        });
        group.bench_with_input(BenchmarkId::new("shift", m), &m, |b, _| {
            b.iter(|| black_box(net.shift_pass(&data, &controls)));
        });
    }
    group.finish();
}

criterion_group!(benches, network_passes);
criterion_main!(benches);
