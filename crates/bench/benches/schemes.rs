//! Criterion benchmarks of the integer schemes (BFV/BGV) and the
//! accelerator scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use uvpu_accel::config::AcceleratorConfig;
use uvpu_accel::machine::Accelerator;
use uvpu_accel::workload::FheOp;
use uvpu_bfv::bgv::BgvEvaluator;
use uvpu_bfv::cipher::Evaluator as BfvEvaluator;
use uvpu_bfv::encoder::BatchEncoder;
use uvpu_bfv::keys::KeyGenerator;
use uvpu_bfv::params::BfvParams;

fn bfv_and_bgv(c: &mut Criterion) {
    let params = BfvParams::new(1 << 8, 50).unwrap();
    let enc = BatchEncoder::new(&params).unwrap();
    let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(1));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk).unwrap();
    let rlk = kg.relin_key(&sk).unwrap();
    let bfv = BfvEvaluator::new(&params);
    let bgv = BgvEvaluator::new(&params);
    let mut rng = StdRng::seed_from_u64(2);
    let bgv_pk = bgv.public_key(&sk, &mut rng).unwrap();
    let bgv_rlk = bgv.relin_key(&sk, &mut rng).unwrap();

    let values: Vec<u64> = (0..256u64).collect();
    let pt = enc.encode(&values).unwrap();
    let bfv_ct = bfv.encrypt(&pk, &pt, &mut rng).unwrap();
    let bgv_ct = bgv.encrypt(&bgv_pk, &pt, &mut rng).unwrap();

    let mut group = c.benchmark_group("integer_schemes_n256");
    group.sample_size(10);
    group.bench_function("bfv_mul_relin", |b| {
        b.iter(|| black_box(bfv.mul(&bfv_ct, &bfv_ct, &rlk).unwrap()));
    });
    group.bench_function("bgv_mul_relin", |b| {
        b.iter(|| black_box(bgv.mul(&bgv_ct, &bgv_ct, &bgv_rlk).unwrap()));
    });
    group.bench_function("bfv_decrypt", |b| {
        b.iter(|| black_box(bfv.decrypt(&sk, &bfv_ct).unwrap()));
    });
    group.bench_function("batch_encode", |b| {
        b.iter(|| black_box(enc.encode(&values).unwrap()));
    });
    group.finish();
}

fn accelerator_scheduling(c: &mut Criterion) {
    let ops = [
        FheOp::HMult {
            n: 1 << 10,
            limbs: 3,
        },
        FheOp::HRot {
            n: 1 << 10,
            limbs: 3,
        },
        FheOp::HAdd {
            n: 1 << 10,
            limbs: 3,
        },
    ];
    let mut group = c.benchmark_group("accelerator");
    group.sample_size(10);
    group.bench_function("schedule_trace_8vpu", |b| {
        let mut accel = Accelerator::new(AcceleratorConfig::default()).unwrap();
        b.iter(|| black_box(accel.run(&ops).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bfv_and_bgv, accelerator_scheduling);
criterion_main!(benches);
