//! Evaluation harness for the `uvpu` paper reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section, printing measured values next to the
//! published ones (recorded in `EXPERIMENTS.md`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — qualitative comparison of related designs |
//! | `table2` | Table II — area/power of network and VPU, 5 designs, 64 lanes |
//! | `table3` | Table III — NTT/automorphism throughput utilization |
//! | `table4` | Table IV — network scalability, m = 4 … 256 |
//! | `fig2`   | Fig 2 — inter-lane network structure and control budget |
//! | `fig3`   | Fig 3 — the worked transpose examples, fully routed |
//!
//! The `benches/` directory adds Criterion microbenchmarks of the
//! simulator's kernels and the Barrett-vs-Montgomery lane ablation.

use uvpu_core::auto_map::AutomorphismMapping;
use uvpu_core::ntt_map::NttPlan;
use uvpu_core::vpu::Vpu;
use uvpu_math::modular::Modulus;
use uvpu_math::primes::ntt_prime;

/// Paper Table III reference values: `(log₂ N, NTT %, automorphism %)`.
pub const PAPER_TABLE3: [(u32, f64, f64); 6] = [
    (10, 74.77, 100.0),
    (12, 85.14, 100.0),
    (14, 77.63, 100.0),
    (16, 79.96, 100.0),
    (18, 81.81, 100.0),
    (20, 80.80, 100.0),
];

/// Paper Table II reference values:
/// `(design, network µm², vpu µm², network mW, vpu mW)`.
pub const PAPER_TABLE2: [(&str, f64, f64, f64, f64); 5] = [
    ("F1", 55_616.42, 300_306.61, 93.50, 842.12),
    ("BTS", 19_405.16, 264_095.35, 45.13, 793.75),
    ("ARK", 9_480.50, 254_170.69, 46.35, 794.97),
    ("SHARP", 44_453.51, 289_143.70, 44.04, 792.66),
    ("Ours", 5_913.62, 250_603.81, 15.59, 764.21),
];

/// Paper Table IV reference values: `(lanes, µm², mW)`.
pub const PAPER_TABLE4: [(usize, f64, f64); 7] = [
    (4, 208.99, 0.59),
    (8, 509.45, 1.38),
    (16, 1_180.83, 3.13),
    (32, 2_664.50, 7.02),
    (64, 5_913.62, 15.59),
    (128, 12_975.47, 34.28),
    (256, 28_226.38, 75.02),
];

/// One measured row of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationRow {
    /// log₂ of the operation length.
    pub log_n: u32,
    /// Dimension decomposition used.
    pub dims: [usize; 4],
    /// Number of dimensions actually used.
    pub dim_count: usize,
    /// Measured NTT throughput utilization (0–1).
    pub ntt_utilization: f64,
    /// Measured automorphism throughput utilization (0–1).
    pub automorphism_utilization: f64,
}

/// Measures Table III on the cycle-level simulator: a full negacyclic
/// NTT and an automorphism at each size, `m = 64` lanes.
///
/// # Panics
///
/// Panics if a plan cannot be built (prime generation never fails for
/// these sizes).
#[must_use]
pub fn measure_table3(m: usize, log_sizes: &[u32]) -> Vec<UtilizationRow> {
    log_sizes
        .iter()
        .map(|&log_n| {
            let n = 1usize << log_n;
            let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
            let plan = NttPlan::new(q, n, m).expect("plan");
            let mut vpu = Vpu::new(m, q, 8).expect("vpu");
            let data: Vec<u64> = (0..n as u64).collect();
            let ntt = plan
                .execute_forward_negacyclic(&mut vpu, &data)
                .expect("ntt run");
            let auto = AutomorphismMapping::new(n, m, 5, 0)
                .expect("auto plan")
                .execute(&mut vpu, &data)
                .expect("auto run");
            let mut dims = [0usize; 4];
            for (i, &d) in plan.dims().iter().enumerate() {
                dims[i] = d;
            }
            UtilizationRow {
                log_n,
                dims,
                dim_count: plan.dims().len(),
                ntt_utilization: ntt.stats.utilization(),
                automorphism_utilization: auto.utilization(),
            }
        })
        .collect()
}

/// Formats a ratio column like the paper: `5913.62 | 1.00x`.
#[must_use]
pub fn ratio_cell(value: f64, baseline: f64) -> String {
    format!("{value:>12.2} | {:>5.2}x", value / baseline)
}

/// Formats a signed percentage delta against a paper reference.
#[must_use]
pub fn delta_cell(measured: f64, paper: f64) -> String {
    let delta = 100.0 * (measured - paper) / paper;
    format!("{delta:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper_shape() {
        let rows = measure_table3(64, &[10, 12, 14]);
        assert_eq!(rows.len(), 3);
        assert!(rows[1].ntt_utilization > rows[0].ntt_utilization);
        assert!(rows[2].ntt_utilization < rows[1].ntt_utilization);
        for r in &rows {
            assert_eq!(r.automorphism_utilization, 1.0);
        }
        assert_eq!(rows[0].dims[..2], [64, 16]);
        assert_eq!(rows[2].dim_count, 3);
    }

    #[test]
    fn formatting_helpers() {
        assert!(ratio_cell(10.0, 5.0).contains("2.00x"));
        assert_eq!(delta_cell(110.0, 100.0), "+10.0%");
        assert_eq!(delta_cell(95.0, 100.0), "-5.0%");
    }
}

/// Drives the full reference stack — cycle-level NTT + automorphism,
/// an accelerator batch, a CKKS multiply/rescale, and a BFV multiply —
/// with `shared` attached everywhere a sink can go: inline on the
/// cycle-level VPU and (through the global install) as the sink seen by
/// the accelerator scheduler, the scheme layers, and `uvpu-par` pool
/// workers. Returns the wall-clock of the driven region and the VPU's
/// own cycle accounting, for the trace-consistency assert every caller
/// performs.
///
/// This is the *one* workload behind both `metrics_workload` (PR-3
/// snapshot gate) and `compare_workload` (cross-backend report gate):
/// sharing the driver is what makes "the Ours column reproduces the
/// metrics snapshot" a structural identity rather than a coincidence of
/// two codepaths.
fn drive_stack<S>(
    smoke: bool,
    shared: &uvpu_core::trace::SyncSink<S>,
) -> (f64, uvpu_core::stats::CycleStats)
where
    S: uvpu_core::trace::TraceSink + Send + 'static,
{
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;
    use uvpu_accel::config::AcceleratorConfig;
    use uvpu_accel::machine::Accelerator;
    use uvpu_accel::workload::FheOp;
    use uvpu_core::trace;

    let (m, log_n) = (64usize, if smoke { 10u32 } else { 12u32 });
    let n = 1usize << log_n;

    // One sink shared by every layer. `SyncSink` makes it both
    // cloneable (same instance inline on the VPU and installed
    // globally) and `Send` (the global install propagates into
    // `uvpu-par` pool workers).
    trace::install_global_sync(shared.clone());
    let start = Instant::now();

    // --- Cycle-level: negacyclic NTT + automorphism on one VPU ----
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let plan = NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::with_sink(m, q, 8, shared.clone()).expect("vpu");
    vpu.set_track(metrics_workload::VPU_TRACK);
    let data: Vec<u64> = (0..n as u64).collect();
    plan.execute_forward_negacyclic(&mut vpu, &data)
        .expect("ntt run");
    AutomorphismMapping::new(n, m, 5, 0)
        .expect("auto plan")
        .execute(&mut vpu, &data)
        .expect("auto run");

    // --- Scheduler-level: a batch on the multi-VPU accelerator ----
    Accelerator::new(AcceleratorConfig::default())
        .expect("accel")
        .run(&[
            FheOp::HMult { n, limbs: 3 },
            FheOp::HRot { n, limbs: 3 },
            FheOp::Ntt { n },
            FheOp::Automorphism { n },
        ])
        .expect("accel run");

    // --- Scheme-level: CKKS multiply + rescale ---------------------
    {
        use uvpu_ckks::encoder::{Encoder, C64};
        use uvpu_ckks::keys::KeyGenerator;
        use uvpu_ckks::ops::Evaluator;
        use uvpu_ckks::params::{CkksContext, CkksParams};

        let ctx =
            CkksContext::new(CkksParams::new(1 << 6, 3, 40).expect("params")).expect("context");
        let enc = Encoder::new(&ctx);
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(1));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).expect("pk");
        let rlk = kg.relin_key(&sk).expect("rlk");
        let eval = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<C64> = (0..32).map(|j| C64::from(1.0 + j as f64 * 0.01)).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&ctx, 3, &x).expect("encode"), &mut rng)
            .expect("encrypt");
        let sum = eval.add(&ct, &ct).expect("add");
        let _ = eval
            .rescale(&eval.mul(&sum, &ct, &rlk).expect("mul"))
            .expect("rescale");
    }

    // --- Scheme-level: a BFV multiply ------------------------------
    {
        use uvpu_bfv::cipher::Evaluator;
        use uvpu_bfv::encoder::BatchEncoder;
        use uvpu_bfv::keys::KeyGenerator;
        use uvpu_bfv::params::BfvParams;

        let params = BfvParams::new(1 << 6, 50).expect("bfv params");
        let enc = BatchEncoder::new(&params).expect("bfv encoder");
        let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(3));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).expect("bfv pk");
        let rlk = kg.relin_key(&sk).expect("bfv rlk");
        let eval = Evaluator::new(&params);
        let mut rng = StdRng::seed_from_u64(4);
        let ct = eval
            .encrypt(&pk, &enc.encode(&[41]).expect("encode"), &mut rng)
            .expect("bfv encrypt");
        let sum = eval.add(&ct, &ct);
        let _ = eval.mul(&sum, &ct, &rlk).expect("bfv mul");
    }

    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    trace::take_global_sync();
    (wall_ms, *vpu.stats())
}

/// The profiled reference workload behind `metrics_report`,
/// `tests/metrics_consistency.rs`, and the CI regression gate.
///
/// One function runs the full stack (via the crate-private
/// `drive_stack` driver shared with [`compare_workload`]) with a single
/// [`ProfilerSink`] attached everywhere a sink can go and returns the
/// deterministic snapshot. Keeping the workload in the library (not the
/// binary) is what makes the determinism tests meaningful: the test and
/// the report profile literally the same code.
pub mod metrics_workload {
    use uvpu_core::trace::SyncSink;
    use uvpu_metrics::profiler::ProfilerSink;

    /// Workload identifier stamped into the snapshot.
    pub const WORKLOAD: &str = "ckks_mul_rescale";
    /// Track id for the cycle-level VPU, clear of the accelerator's
    /// scheduler slots and `SCHEME_TRACK`.
    pub const VPU_TRACK: u32 = 10;
    /// Lane count of the reference workload's VPUs.
    pub const LANES: usize = 64;

    /// One profiled run.
    #[derive(Debug, Clone)]
    pub struct WorkloadRun {
        /// The deterministic snapshot core (no advisory section) —
        /// byte-identical across runs and `UVPU_THREADS` settings.
        pub core_json: String,
        /// Wall-clock of the profiled region (advisory only).
        pub wall_ms: f64,
        /// Total attributed cycles (for the summary line).
        pub cycles: u64,
        /// Whole-run utilization (for the summary line).
        pub utilization: f64,
        /// Total attributed energy in pJ (for the summary line).
        pub energy_pj: f64,
    }

    /// Runs the reference workload and returns its snapshot.
    ///
    /// `smoke` shrinks the ring degrees (2^10 instead of 2^12) for the
    /// CI fast path; the variant name is stamped into the snapshot so a
    /// smoke snapshot can never be diffed against a full baseline by
    /// accident.
    ///
    /// # Panics
    ///
    /// Panics if any stage of the stack fails (deterministic inputs —
    /// a failure is a bug, not an environment condition) or if the
    /// trace-derived cycle totals diverge from the VPU's own
    /// accounting.
    #[must_use]
    pub fn run(smoke: bool) -> WorkloadRun {
        let variant = if smoke { "smoke" } else { "full" };
        let shared = SyncSink::new(ProfilerSink::new(LANES));
        let (wall_ms, vpu_stats) = crate::drive_stack(smoke, &shared);

        let (core_json, cycles, utilization, energy_pj) = shared.with(|p| {
            assert_eq!(
                *p.running(),
                vpu_stats,
                "trace-derived cycle totals must be bit-identical to CycleStats"
            );
            (
                p.snapshot(WORKLOAD, variant),
                p.running().total(),
                p.running().utilization(),
                p.energy_total_pj(),
            )
        });
        WorkloadRun {
            core_json,
            wall_ms,
            cycles,
            utilization,
            energy_pj,
        }
    }
}

/// The cross-backend comparison workload behind `compare_report`,
/// `tests/compare_consistency.rs`, and the `bench_compare.sh` CI gate.
///
/// Runs the *same* stack as [`metrics_workload`] (literally the same
/// crate-private driver) with a `(ProfilerSink, CompareSink)` tee: the
/// profiler provides the PR-3 ground truth, the comparison sink
/// attributes the identical event stream to all seven modeled backends
/// in one pass. Before rendering, the Ours lane is asserted
/// bit-identical to the profiler — cycles, component counts, and every
/// phase — so a report that renders at all has already proven its
/// acceptance criterion at runtime.
pub mod compare_workload {
    use uvpu_compare::report;
    use uvpu_compare::sink::CompareSink;
    use uvpu_core::trace::SyncSink;
    use uvpu_metrics::energy::Component;
    use uvpu_metrics::profiler::ProfilerSink;

    pub use super::metrics_workload::{LANES, WORKLOAD};

    /// One comparison run.
    #[derive(Debug, Clone)]
    pub struct CompareRun {
        /// The deterministic report core (no advisory section) —
        /// byte-identical across runs and `UVPU_THREADS` settings.
        pub core_json: String,
        /// Wall-clock of the driven region (advisory only).
        pub wall_ms: f64,
        /// Number of modeled backends in the report.
        pub backends: usize,
        /// Total cycles on the paper's design (for the summary line).
        pub ours_cycles: u64,
        /// Total energy on the paper's design, pJ (for the summary
        /// line).
        pub ours_energy_pj: f64,
    }

    /// Runs the comparison workload and returns its report.
    ///
    /// # Panics
    ///
    /// Panics if any stage of the stack fails, or if the Ours lane of
    /// the comparison diverges from the profiler's attribution in any
    /// integer count — the structural identity the report's acceptance
    /// rests on.
    #[must_use]
    pub fn run(smoke: bool) -> CompareRun {
        let variant = if smoke { "smoke" } else { "full" };
        let shared = SyncSink::new((ProfilerSink::new(LANES), CompareSink::suite(LANES)));
        let (wall_ms, vpu_stats) = crate::drive_stack(smoke, &shared);

        let (core_json, backends, ours_cycles, ours_energy_pj) = shared.with(|sinks| {
            let (profiler, compare) = (&sinks.0, &sinks.1);
            assert_eq!(
                *profiler.running(),
                vpu_stats,
                "trace-derived cycle totals must be bit-identical to CycleStats"
            );
            let ours = compare.ours();
            assert_eq!(
                ours.cycles(),
                profiler.running(),
                "Ours cycles must equal the profiler's"
            );
            for c in Component::ALL {
                assert_eq!(
                    ours.components()[c.index()],
                    profiler.component_count(c),
                    "Ours component count {} must equal the profiler's",
                    c.name()
                );
            }
            for (name, bins) in ours.phases() {
                assert_eq!(
                    &bins.cycles,
                    &profiler.phases()[name],
                    "Ours phase {name} must equal the profiler's"
                );
            }
            (
                report::render(compare, WORKLOAD, variant),
                compare.backends().len(),
                ours.cycles().total(),
                ours.energy_total_pj(),
            )
        });
        CompareRun {
            core_json,
            wall_ms,
            backends,
            ours_cycles,
            ours_energy_pj,
        }
    }
}

/// The observability workload behind `obs_report`,
/// `tests/obs_consistency.rs`, and the `bench_obs.sh` CI gate.
///
/// Runs the *same* stack as [`metrics_workload`] (literally the same
/// crate-private driver) with a single
/// [`TreeProfilerSink`](uvpu_metrics::treeprof::TreeProfilerSink)
/// attached everywhere a sink can go. The tree embeds a flat
/// `ProfilerSink` fed every event first, and
/// [`uvpu_metrics::report::render`] asserts the tree's self totals
/// reproduce the flat bins bit-exactly before rendering — so a report
/// that renders at all has already proven the acceptance criterion at
/// runtime.
pub mod obs_workload {
    use uvpu_core::trace::SyncSink;
    use uvpu_metrics::report;
    use uvpu_metrics::treeprof::TreeProfilerSink;

    pub use super::metrics_workload::{LANES, WORKLOAD};

    /// One observability run.
    #[derive(Debug, Clone)]
    pub struct ObsRun {
        /// The deterministic `uvpu-obs/v1` snapshot core (no advisory
        /// section) — byte-identical across runs and `UVPU_THREADS`.
        pub core_json: String,
        /// Collapsed-stack flamegraph text (`seg;seg;leaf cycles` per
        /// line), pinned by the snapshot's FNV-1a digest.
        pub flamegraph: String,
        /// Perfetto-compatible call-tree summary JSON.
        pub perfetto_json: String,
        /// Wall-clock of the profiled region (advisory only).
        pub wall_ms: f64,
        /// Distinct tree paths.
        pub paths: usize,
        /// Trace events observed by the sink.
        pub events: u64,
        /// Total attributed cycles (for the summary line).
        pub cycles: u64,
    }

    /// Runs the observability workload and returns its artifacts.
    ///
    /// # Panics
    ///
    /// Panics if any stage of the stack fails, if the trace-derived
    /// cycle totals diverge from the VPU's own accounting, or if the
    /// tree's self totals diverge from the embedded flat profiler's
    /// bins (checked inside [`report::render`]).
    #[must_use]
    pub fn run(smoke: bool) -> ObsRun {
        let variant = if smoke { "smoke" } else { "full" };
        let shared = SyncSink::new(TreeProfilerSink::new(LANES));
        let (wall_ms, vpu_stats) = crate::drive_stack(smoke, &shared);

        let (core_json, flamegraph, perfetto_json, paths, events, cycles) = shared.with(|tree| {
            assert_eq!(
                *tree.flat().running(),
                vpu_stats,
                "trace-derived cycle totals must be bit-identical to CycleStats"
            );
            (
                report::render(tree, WORKLOAD, variant),
                report::flamegraph(tree),
                report::perfetto_tree(tree),
                tree.nodes().len(),
                tree.events_observed(),
                tree.flat().running().total(),
            )
        });
        ObsRun {
            core_json,
            flamegraph,
            perfetto_json,
            wall_ms,
            paths,
            events,
            cycles,
        }
    }
}

/// Minimal JSON emission for the flat table rows (keeps the evaluation
/// harness dependency-free; all values are numbers or plain strings).
pub mod json {
    /// One `"key": value` pair.
    #[derive(Debug, Clone)]
    pub enum Value {
        /// A numeric value.
        Num(f64),
        /// An integer value (emitted without a decimal point).
        Int(i64),
        /// A string value (escaped minimally; table content is ASCII).
        Str(String),
    }

    /// Serializes rows of `(key, value)` pairs as a JSON array of objects.
    #[must_use]
    pub fn rows_to_json(rows: &[Vec<(&str, Value)>]) -> String {
        let mut out = String::from("[\n");
        for (i, row) in rows.iter().enumerate() {
            out.push_str("  {");
            for (j, (k, v)) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match v {
                    Value::Num(x) => out.push_str(&format!("\"{k}\": {x:.4}")),
                    Value::Int(x) => out.push_str(&format!("\"{k}\": {x}")),
                    Value::Str(s) => {
                        let escaped = s.replace('\\', "\\\\").replace('"', "\\\"");
                        out.push_str(&format!("\"{k}\": \"{escaped}\""));
                    }
                }
            }
            out.push('}');
            if i + 1 < rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }

    /// Whether the process was invoked with `--json`.
    #[must_use]
    pub fn json_requested() -> bool {
        std::env::args().any(|a| a == "--json")
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn emits_valid_flat_json() {
            let rows = vec![
                vec![
                    ("design", Value::Str("F1".into())),
                    ("area", Value::Num(1.5)),
                ],
                vec![
                    ("design", Value::Str("Ours".into())),
                    ("lanes", Value::Int(64)),
                ],
            ];
            let s = rows_to_json(&rows);
            assert!(s.starts_with('[') && s.ends_with(']'));
            assert!(s.contains("\"design\": \"F1\""));
            assert!(s.contains("\"area\": 1.5000"));
            assert!(s.contains("\"lanes\": 64"));
            assert_eq!(s.matches('{').count(), 2);
        }

        #[test]
        fn escapes_strings() {
            let rows = vec![vec![("s", Value::Str("a\"b\\c".into()))]];
            let s = rows_to_json(&rows);
            assert!(s.contains(r#""s": "a\"b\\c""#));
        }
    }
}
