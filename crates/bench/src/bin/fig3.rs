//! Regenerates paper **Fig 3**: the dimension transposes of the NTT
//! decomposition, routed beat-by-beat through the VPU's shift network and
//! per-lane register addressing.
//!
//! - Fig 3(a): the regular column→diagonal→row transpose (2 passes per
//!   column), shown on an m×m tile.
//! - Fig 3(b): the paper's worked irregular example (m = 4, dims x=4,
//!   y=4, z=2), where restoring the canonical layout from the mixed
//!   layout needs a constant-geometry pass first — 3 passes per column.

use uvpu_core::transpose::{fig3b_mixed_transpose, transpose_square};
use uvpu_core::vpu::Vpu;
use uvpu_math::modular::Modulus;

fn main() {
    let q = Modulus::new(0x0fff_ffff_fffc_0001).expect("prime modulus");

    println!("FIG 3(a) — regular transpose on the shift network (m = 4 tile)");
    let m = 4;
    let mut vpu = Vpu::new(m, q, 2 * m).expect("vpu");
    for c in 0..m {
        let col: Vec<u64> = (0..m).map(|r| (r * m + c) as u64).collect();
        vpu.load(c, &col).expect("load");
        println!("  source column {c}: {col:?}");
    }
    transpose_square(&mut vpu, 0, m).expect("transpose");
    for r in 0..m {
        println!(
            "  target row    {r}: {:?}",
            vpu.store(m + r).expect("store")
        );
    }
    println!(
        "  cost: {} network beats = 2 passes per column (shift down by y, then up by x)",
        vpu.stats().network_move
    );
    println!();

    println!("FIG 3(b) — irregular transpose from the mixed layout y|x1 × x0|z");
    let mut vpu = Vpu::new(4, q, 32).expect("vpu");
    let idx = |x: usize, y: usize, z: usize| ((z * 4 + y) * 4 + x) as u64;
    for reg in 0..8usize {
        let (y, x1) = (reg >> 1, reg & 1);
        let col: Vec<u64> = (0..4)
            .map(|lane| {
                let (x0, z) = (lane >> 1, lane & 1);
                idx(x1 * 2 + x0, y, z)
            })
            .collect();
        vpu.load(reg, &col).expect("load");
    }
    println!(
        "  first mixed column (paper's example): {:?} — irregular shift distances, not realizable by shifts alone",
        vpu.store(0).expect("store")
    );
    fig3b_mixed_transpose(&mut vpu, 0, 8).expect("transpose");
    println!("  after one DIT constant-geometry pass + two shift passes per column:");
    for reg in 0..8usize {
        let (z, y) = (reg >> 2, reg & 3);
        println!(
            "  canonical column z={z} y={y}: {:?}",
            vpu.store(8 + reg).expect("store")
        );
    }
    println!(
        "  cost: {} network beats over 8 columns = 2 + (log2 m - log2 z) = 3 passes per column",
        vpu.stats().network_move
    );
}
