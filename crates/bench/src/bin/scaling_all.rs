//! **Extension experiment** (beyond the paper): scalability of *all five*
//! permutation-hardware designs across lane counts. The paper's Table IV
//! only reports the unified network; this sweep shows *why* the unified
//! design wins harder at scale — the crossbar grows quadratically and the
//! SRAM-transpose designs pay capacity ∝ m².

use uvpu_hw_model::designs::{DesignKind, DesignModel};
use uvpu_hw_model::tech::TechParams;

fn main() {
    let tech = TechParams::asap7();
    println!("EXTENSION — NETWORK AREA (µm²) ACROSS LANE COUNTS, ALL DESIGNS");
    print!("{:<8}", "Lanes");
    for k in DesignKind::ALL {
        print!("{:>14}", k.name());
    }
    println!("{:>12}", "worst/ours");
    println!("{}", "-".repeat(8 + 14 * 5 + 12));
    for m in [16usize, 32, 64, 128, 256] {
        print!("{m:<8}");
        let mut worst: f64 = 0.0;
        let ours = DesignModel::new(DesignKind::Ours, m).network_area(&tech);
        for k in DesignKind::ALL {
            let a = DesignModel::new(k, m).network_area(&tech);
            worst = worst.max(a / ours);
            print!("{a:>14.0}");
        }
        println!("{worst:>11.1}x");
    }
    println!();
    println!("EXTENSION — NETWORK POWER (mW) ACROSS LANE COUNTS, ALL DESIGNS");
    print!("{:<8}", "Lanes");
    for k in DesignKind::ALL {
        print!("{:>14}", k.name());
    }
    println!();
    println!("{}", "-".repeat(8 + 14 * 5));
    for m in [16usize, 32, 64, 128, 256] {
        print!("{m:<8}");
        for k in DesignKind::ALL {
            print!("{:>14.2}", DesignModel::new(k, m).network_power(&tech));
        }
        println!();
    }
    println!();
    println!(
        "observation: the savings ratio GROWS with lane count — the baselines' m² terms\n\
         (crossbar crosspoints, transpose SRAM capacity) dominate, while the unified\n\
         network stays at m·(log m + 2) MUX rows."
    );
}
