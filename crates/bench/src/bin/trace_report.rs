//! End-to-end demonstration of the `uvpu-trace` layer: runs a paper
//! workload with every sink attached, writes a Chrome trace-event /
//! Perfetto JSON file — including cumulative per-component **energy
//! counter tracks** (`ph: 'C'`) plotted next to the spans that spent
//! the energy — prints a per-phase utilization breakdown plus the
//! ring-buffer tail's per-kind drop windows, and asserts that the cycle
//! totals reconstructed purely from trace events are bit-identical to
//! the VPU's own [`CycleStats`] accounting.
//!
//! Usage: `cargo run --release --bin trace_report -- [--threads N] [--bench] [--json PATH] [OUTPUT.json]`
//! (default output: `uvpu_trace.json`; open it in `ui.perfetto.dev` or
//! `chrome://tracing`).
//!
//! `--json PATH` additionally writes the per-phase breakdown as
//! machine-readable JSON, in the same per-phase object shape as the
//! `metrics_report` snapshot (see [`uvpu_metrics::snapshot`]), so
//! downstream tooling parses one schema for both reports.
//!
//! `--threads N` pins the `uvpu-par` host worker pool to `N` threads
//! (overriding `UVPU_THREADS` and the detected core count). Results are
//! bit-identical for any thread count; only the wall-clock changes.
//!
//! `--bench` skips the report and instead times the data-parallel CKKS
//! hot path (N = 2^13, 5 RNS limbs: multiply + relinearize + rescale),
//! printing one machine-readable line consumed by `scripts/bench_par.sh`:
//!
//! ```text
//! BENCH workload=ckks_mul_rescale n=8192 limbs=5 threads=4 wall_ms=812.4 digest=5f9e... cycles=12345
//! ```
//!
//! `digest` is an order-sensitive FNV-1a hash over every residue
//! coefficient of the resulting ciphertext — equal digests across
//! `--threads` values prove bit-exactness. `cycles` is the traced
//! single-VPU cost of the matching NTT at the same ring degree, which
//! must also be thread-invariant.

use std::time::Instant;
use uvpu_accel::config::AcceleratorConfig;
use uvpu_accel::machine::Accelerator;
use uvpu_accel::workload::FheOp;
use uvpu_core::auto_map::AutomorphismMapping;
use uvpu_core::ntt_map::NttPlan;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace::{self, CounterSink, RingBufferSink, SyncSink};
use uvpu_core::vpu::Vpu;
use uvpu_math::modular::Modulus;
use uvpu_math::primes::ntt_prime;
use uvpu_metrics::timeline::EnergyTimelineSink;

/// Track id for the cycle-level VPU, clear of the accelerator's
/// scheduler slots (0..vpu_count) and [`trace::SCHEME_TRACK`].
const VPU_TRACK: u32 = 10;
/// Track id of the energy counter samples in the Perfetto export.
const ENERGY_TRACK: u32 = 50;
/// Capacity of the demonstration ring-buffer tail — deliberately small
/// so the reference workload overflows it and the per-kind
/// `dropped_since_last_read` windows show real numbers.
const RING_CAPACITY: usize = 4096;

fn breakdown_row(name: &str, stats: &CycleStats) -> String {
    let util = if stats.total() == 0 {
        // The empty-phase convention: utilization() would report 1.0
        // (nothing wasted), but a report distinguishes "no VPU beats"
        // (logical span) from "perfect".
        "n/a".to_string()
    } else {
        format!("{:.2}%", 100.0 * stats.utilization())
    };
    format!(
        "  {:<28} {:>10} {:>10} {:>10} {:>10} {:>8}",
        name,
        stats.butterfly,
        stats.elementwise,
        stats.network_move,
        stats.total(),
        util
    )
}

/// Order-sensitive FNV-1a over every residue coefficient of a CKKS
/// ciphertext: any single differing word changes the digest.
fn ciphertext_digest(ct: &uvpu_ckks::ciphertext::Ciphertext) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in &ct.parts {
        for i in 0..=part.level() {
            for &c in part.residue(i).coeffs() {
                h ^= c;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Times the data-parallel CKKS hot path and prints the BENCH line.
fn run_bench() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uvpu_ckks::encoder::{Encoder, C64};
    use uvpu_ckks::keys::KeyGenerator;
    use uvpu_ckks::ops::Evaluator;
    use uvpu_ckks::params::{CkksContext, CkksParams};

    let threads = uvpu_par::max_threads();
    let n = 1usize << 13;
    let levels = 4; // 5 RNS limbs at the top level
    let ctx = CkksContext::new(CkksParams::new(n, levels, 40).expect("params")).expect("context");
    let enc = Encoder::new(&ctx);
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(7));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk).expect("pk");
    let rlk = kg.relin_key(&sk).expect("rlk");
    let eval = Evaluator::new(&ctx);
    let mut rng = StdRng::seed_from_u64(8);
    let x: Vec<C64> = (0..ctx.params().slot_count())
        .map(|j| C64::from(1.0 + j as f64 * 1e-4))
        .collect();
    let ct = eval
        .encrypt(
            &pk,
            &enc.encode(&ctx, levels, &x).expect("encode"),
            &mut rng,
        )
        .expect("encrypt");

    // Warm the plan caches (NTT tables are built on context creation,
    // but first-use twiddle work should not skew the timed loop).
    let _ = eval
        .rescale(&eval.mul(&ct, &ct, &rlk).expect("mul"))
        .expect("rescale");

    let iters = 5u32;
    let start = Instant::now();
    let mut last = None;
    for _ in 0..iters {
        last = Some(
            eval.rescale(&eval.mul(&ct, &ct, &rlk).expect("mul"))
                .expect("rescale"),
        );
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let digest = ciphertext_digest(&last.expect("at least one iteration"));

    // Thread-invariant cycle accounting: the traced single-VPU cost of
    // the matching negacyclic NTT. Charged analytically per column, so
    // the total must not depend on the worker count.
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let counter = SyncSink::new(CounterSink::new());
    let plan = NttPlan::cached(q, n, 64).expect("plan");
    let mut vpu = Vpu::with_sink(64, q, 8, counter.clone()).expect("vpu");
    let data: Vec<u64> = (0..n as u64).collect();
    let run = plan
        .execute_forward_negacyclic(&mut vpu, &data)
        .expect("ntt run");
    let traced = counter.with(|c| *c.running());
    assert_eq!(
        traced, run.stats,
        "trace-derived cycle totals must be bit-identical to CycleStats"
    );

    println!(
        "BENCH workload=ckks_mul_rescale n={n} limbs={} threads={threads} \
         wall_ms={wall_ms:.1} digest={digest:016x} cycles={}",
        levels + 1,
        run.stats.total()
    );
}

fn main() {
    let mut out_path = "uvpu_trace.json".to_string();
    let mut json_path: Option<String> = None;
    let mut bench = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let t: usize = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads takes a positive integer");
                uvpu_par::set_thread_override(Some(t));
            }
            "--bench" => bench = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            other => out_path = other.to_string(),
        }
    }
    if bench {
        run_bench();
        return;
    }
    let m = 64usize;
    let log_n = 12u32;
    let n = 1usize << log_n;

    // One sink trio shared by the cycle-level VPU (as its inline sink)
    // and by the scheme/scheduler layers (as the global sink): the
    // counters check consistency, the ring buffer keeps a bounded event
    // tail (demonstrating the per-kind drop accounting), and the energy
    // timeline wraps the Perfetto exporter with cumulative
    // per-component pJ counter tracks. The sync install propagates the
    // sink into `uvpu-par` pool workers, so spans emitted off the main
    // thread are captured too.
    let shared = SyncSink::new((
        (CounterSink::new(), RingBufferSink::new(RING_CAPACITY)),
        EnergyTimelineSink::new(m, ENERGY_TRACK),
    ));
    trace::install_global_sync(shared.clone());

    // --- Workload 1: negacyclic NTT + automorphism on one VPU ---------
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let plan = NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::with_sink(m, q, 8, shared.clone()).expect("vpu");
    vpu.set_track(VPU_TRACK);
    let data: Vec<u64> = (0..n as u64).collect();
    let ntt = plan
        .execute_forward_negacyclic(&mut vpu, &data)
        .expect("ntt run");
    let auto = AutomorphismMapping::new(n, m, 5, 0)
        .expect("auto plan")
        .execute(&mut vpu, &data)
        .expect("auto run");

    // --- Workload 2: HMult + HRot batch on the multi-VPU accelerator --
    let mut accel = Accelerator::new(AcceleratorConfig::default()).expect("accel");
    let report = accel
        .run(&[
            FheOp::HMult { n, limbs: 3 },
            FheOp::HRot { n, limbs: 3 },
            FheOp::Ntt { n },
            FheOp::Automorphism { n },
        ])
        .expect("accel run");

    // --- Workload 3: scheme-level spans from a CKKS multiply ----------
    {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use uvpu_ckks::encoder::{Encoder, C64};
        use uvpu_ckks::keys::KeyGenerator;
        use uvpu_ckks::ops::Evaluator;
        use uvpu_ckks::params::{CkksContext, CkksParams};

        let ctx =
            CkksContext::new(CkksParams::new(1 << 6, 3, 40).expect("params")).expect("context");
        let enc = Encoder::new(&ctx);
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(1));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).expect("pk");
        let rlk = kg.relin_key(&sk).expect("rlk");
        let eval = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<C64> = (0..32).map(|j| C64::from(1.0 + j as f64 * 0.01)).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&ctx, 3, &x).expect("encode"), &mut rng)
            .expect("encrypt");
        let _ = eval
            .rescale(&eval.mul(&ct, &ct, &rlk).expect("mul"))
            .expect("rescale");
    }

    trace::take_global_sync();
    let vpu_stats = *vpu.stats();

    // --- Consistency: trace-derived totals vs the VPU's own counters --
    let (traced, butterfly, loads, stores) = shared.with(|((counter, _), _)| {
        (
            *counter.running(),
            counter.butterfly_beats(),
            counter.reg_loads(),
            counter.reg_stores(),
        )
    });
    assert_eq!(
        traced, vpu_stats,
        "trace-derived cycle totals must be bit-identical to CycleStats"
    );
    assert_eq!(butterfly, vpu_stats.butterfly);

    println!("uvpu-trace report — m = {m} lanes, N = 2^{log_n}");
    println!();
    println!(
        "single-VPU: NTT {} cycles ({:.2}% utilized), automorphism {} cycles ({:.2}% utilized)",
        ntt.stats.total(),
        100.0 * ntt.stats.utilization(),
        auto.stats.total(),
        100.0 * auto.utilization()
    );
    println!("{report}");

    println!(
        "phase breakdown (cycles attributed by trace spans; n/a = logical span, no VPU beats):"
    );
    println!(
        "  {:<28} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "phase", "butterfly", "ewise", "move", "total", "util"
    );
    shared.with(|((counter, _), _)| {
        for (name, stats) in counter.phases() {
            println!("{}", breakdown_row(name, stats));
        }
    });
    println!("  register file: {loads} loads, {stores} stores (not cycle-charged)");
    println!();
    println!(
        "consistency: trace-derived totals == CycleStats totals ({} cycles) — OK",
        traced.total()
    );

    // --- Ring-buffer tail: bounded retention with drop accounting -----
    let (kept, drop_beats, drop_mems, drop_spans) = shared.with(|((_, ring), _)| {
        let (beats, mems, spans) = ring.dropped_since_last_read_by_kind();
        let kept = ring.events().len();
        ring.mark_read();
        (kept, beats, mems, spans)
    });
    println!(
        "ring buffer: kept last {kept}/{RING_CAPACITY} events; dropped since last read: \
         {drop_beats} beats, {drop_mems} mems, {drop_spans} spans"
    );

    // --- Perfetto export (with energy counter tracks) -----------------
    let (json, events, samples, energy_pj) = shared.with(|(_, timeline)| {
        let samples = timeline.sample_count();
        let energy_pj = timeline.energy_total_pj();
        let json = timeline.to_json();
        (json, timeline.event_count(), samples, energy_pj)
    });
    assert!(
        json.starts_with("{\"displayTimeUnit\"") && json.ends_with("]}"),
        "exporter must emit a Chrome trace-event JSON object"
    );
    std::fs::write(&out_path, &json).expect("write trace file");
    println!(
        "perfetto: wrote {events} events ({} bytes) to {out_path} — open in ui.perfetto.dev",
        json.len()
    );
    println!(
        "energy: {samples} counter samples on track {ENERGY_TRACK} \
         (cumulative per-component pJ; total {energy_pj:.1} pJ)"
    );

    // --- Machine-readable phase breakdown (shared snapshot schema) ---
    if let Some(path) = json_path {
        let phases = shared
            .with(|((counter, _), _)| uvpu_metrics::snapshot::phases_to_json(counter.phases(), 2));
        let doc = format!(
            "{{\n  \"schema\": \"{}\",\n  \"workload\": \"trace_report\",\n  \"phases\": {phases}\n}}\n",
            uvpu_metrics::snapshot::SCHEMA
        );
        std::fs::write(&path, &doc).expect("write phase json");
        println!("phases: wrote {} bytes to {path}", doc.len());
    }
}
