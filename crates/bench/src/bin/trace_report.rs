//! End-to-end demonstration of the `uvpu-trace` layer: runs a paper
//! workload with every sink attached, writes a Chrome trace-event /
//! Perfetto JSON file, prints a per-phase utilization breakdown, and
//! asserts that the cycle totals reconstructed purely from trace events
//! are bit-identical to the VPU's own [`CycleStats`] accounting.
//!
//! Usage: `cargo run --release --bin trace_report [OUTPUT.json]`
//! (default output: `uvpu_trace.json`; open it in `ui.perfetto.dev` or
//! `chrome://tracing`).

use uvpu_accel::config::AcceleratorConfig;
use uvpu_accel::machine::Accelerator;
use uvpu_accel::workload::FheOp;
use uvpu_core::auto_map::AutomorphismMapping;
use uvpu_core::ntt_map::NttPlan;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace::{self, CounterSink, PerfettoSink, SharedSink};
use uvpu_core::vpu::Vpu;
use uvpu_math::modular::Modulus;
use uvpu_math::primes::ntt_prime;

/// Track id for the cycle-level VPU, clear of the accelerator's
/// scheduler slots (0..vpu_count) and [`trace::SCHEME_TRACK`].
const VPU_TRACK: u32 = 10;

fn breakdown_row(name: &str, stats: &CycleStats) -> String {
    let util = if stats.total() == 0 {
        // The empty-phase convention: utilization() would report 1.0
        // (nothing wasted), but a report distinguishes "no VPU beats"
        // (logical span) from "perfect".
        "n/a".to_string()
    } else {
        format!("{:.2}%", 100.0 * stats.utilization())
    };
    format!(
        "  {:<28} {:>10} {:>10} {:>10} {:>10} {:>8}",
        name,
        stats.butterfly,
        stats.elementwise,
        stats.network_move,
        stats.total(),
        util
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "uvpu_trace.json".to_string());
    let m = 64usize;
    let log_n = 12u32;
    let n = 1usize << log_n;

    // One sink pair shared by the cycle-level VPU (as its inline sink)
    // and by the scheme/scheduler layers (as the thread-local global
    // sink): the counters check consistency, the exporter writes JSON.
    let shared = SharedSink::new((CounterSink::new(), PerfettoSink::new()));
    trace::install_global(Box::new(shared.clone()));

    // --- Workload 1: negacyclic NTT + automorphism on one VPU ---------
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let plan = NttPlan::new(q, n, m).expect("plan");
    let mut vpu = Vpu::with_sink(m, q, 8, shared.clone()).expect("vpu");
    vpu.set_track(VPU_TRACK);
    let data: Vec<u64> = (0..n as u64).collect();
    let ntt = plan
        .execute_forward_negacyclic(&mut vpu, &data)
        .expect("ntt run");
    let auto = AutomorphismMapping::new(n, m, 5, 0)
        .expect("auto plan")
        .execute(&mut vpu, &data)
        .expect("auto run");

    // --- Workload 2: HMult + HRot batch on the multi-VPU accelerator --
    let mut accel = Accelerator::new(AcceleratorConfig::default()).expect("accel");
    let report = accel
        .run(&[
            FheOp::HMult { n, limbs: 3 },
            FheOp::HRot { n, limbs: 3 },
            FheOp::Ntt { n },
            FheOp::Automorphism { n },
        ])
        .expect("accel run");

    // --- Workload 3: scheme-level spans from a CKKS multiply ----------
    {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use uvpu_ckks::encoder::{Encoder, C64};
        use uvpu_ckks::keys::KeyGenerator;
        use uvpu_ckks::ops::Evaluator;
        use uvpu_ckks::params::{CkksContext, CkksParams};

        let ctx =
            CkksContext::new(CkksParams::new(1 << 6, 3, 40).expect("params")).expect("context");
        let enc = Encoder::new(&ctx);
        let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(1));
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk).expect("pk");
        let rlk = kg.relin_key(&sk).expect("rlk");
        let eval = Evaluator::new(&ctx);
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<C64> = (0..32).map(|j| C64::from(1.0 + j as f64 * 0.01)).collect();
        let ct = eval
            .encrypt(&pk, &enc.encode(&ctx, 3, &x).expect("encode"), &mut rng)
            .expect("encrypt");
        let _ = eval
            .rescale(&eval.mul(&ct, &ct, &rlk).expect("mul"))
            .expect("rescale");
    }

    trace::take_global();
    let vpu_stats = *vpu.stats();

    // --- Consistency: trace-derived totals vs the VPU's own counters --
    let (traced, butterfly, loads, stores) = shared.with(|(counter, _)| {
        (
            *counter.running(),
            counter.butterfly_beats(),
            counter.reg_loads(),
            counter.reg_stores(),
        )
    });
    assert_eq!(
        traced, vpu_stats,
        "trace-derived cycle totals must be bit-identical to CycleStats"
    );
    assert_eq!(butterfly, vpu_stats.butterfly);

    println!("uvpu-trace report — m = {m} lanes, N = 2^{log_n}");
    println!();
    println!(
        "single-VPU: NTT {} cycles ({:.2}% utilized), automorphism {} cycles ({:.2}% utilized)",
        ntt.stats.total(),
        100.0 * ntt.stats.utilization(),
        auto.stats.total(),
        100.0 * auto.utilization()
    );
    println!("{report}");

    println!(
        "phase breakdown (cycles attributed by trace spans; n/a = logical span, no VPU beats):"
    );
    println!(
        "  {:<28} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "phase", "butterfly", "ewise", "move", "total", "util"
    );
    shared.with(|(counter, _)| {
        for (name, stats) in counter.phases() {
            println!("{}", breakdown_row(name, stats));
        }
    });
    println!("  register file: {loads} loads, {stores} stores (not cycle-charged)");
    println!();
    println!(
        "consistency: trace-derived totals == CycleStats totals ({} cycles) — OK",
        traced.total()
    );

    // --- Perfetto export ---------------------------------------------
    let (json, events) = shared.with(|(_, perfetto)| {
        let json = perfetto.to_json();
        (json, perfetto.event_count())
    });
    assert!(
        json.starts_with("{\"displayTimeUnit\"") && json.ends_with("]}"),
        "exporter must emit a Chrome trace-event JSON object"
    );
    std::fs::write(&out_path, &json).expect("write trace file");
    println!(
        "perfetto: wrote {events} events ({} bytes) to {out_path} — open in ui.perfetto.dev",
        json.len()
    );
}
