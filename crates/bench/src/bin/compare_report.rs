//! Cross-accelerator comparison report: runs the reference workload
//! with a `(ProfilerSink, CompareSink)` tee attached to every layer and
//! writes the versioned `BENCH_compare.json` report (schema:
//! [`uvpu_compare::report`]) covering the paper's five designs plus the
//! RPU and BASALISC ports.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin compare_report -- \
//!     [--threads N] [--smoke] [--out PATH] [--no-advisory] [--check BASELINE]
//! ```
//!
//! - `--threads N` pins the `uvpu-par` worker pool. The report core is
//!   byte-identical for any value; only the advisory wall-clock changes.
//! - `--smoke` runs the reduced-size variant (CI fast path).
//! - `--out PATH` writes the report there (default `BENCH_compare.json`;
//!   `-` skips writing).
//! - `--no-advisory` omits the advisory section, producing a file that
//!   is byte-comparable with `cmp`.
//! - `--check BASELINE` is the regression gate: the deterministic core
//!   is diffed against the committed baseline (advisory sections on
//!   either side ignored) and any drift is printed as unified-diff
//!   hunks with ±3 context lines before exiting 1. Wall-clock never
//!   gates.
//!
//! Before rendering, the library asserts the `Ours` column bit-identical
//! to the PR-3 profiler's attribution of the same stream — so a report
//! that exists at all has already proven the metrics-consistency
//! criterion at runtime.
//!
//! Prints one machine-readable summary line:
//!
//! ```text
//! COMPARE workload=ckks_mul_rescale variant=full threads=4 backends=7 ours_cycles=12345 ours_energy_pj=123456.7 wall_ms=81.2
//! ```

use uvpu_bench::compare_workload;
use uvpu_metrics::snapshot;

fn fail(msg: &str) -> ! {
    eprintln!("compare_report: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut out_path = "BENCH_compare.json".to_string();
    let mut smoke = false;
    let mut advisory = true;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| fail("--threads needs a value"));
                let t: usize = raw
                    .parse()
                    .unwrap_or_else(|_| fail("--threads takes a positive integer"));
                uvpu_par::set_thread_override(Some(t));
            }
            "--smoke" => smoke = true,
            "--no-advisory" => advisory = false,
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out needs a path")),
            "--check" => {
                check = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--check needs a baseline path")),
                );
            }
            other => fail(&format!("unknown argument: {other}")),
        }
    }

    let threads = uvpu_par::max_threads();
    let run = compare_workload::run(smoke);

    println!(
        "COMPARE workload={} variant={} threads={threads} backends={} \
         ours_cycles={} ours_energy_pj={:.1} wall_ms={:.1}",
        compare_workload::WORKLOAD,
        if smoke { "smoke" } else { "full" },
        run.backends,
        run.ours_cycles,
        run.ours_energy_pj,
        run.wall_ms
    );

    if out_path != "-" {
        let contents = if advisory {
            snapshot::with_advisory(
                &run.core_json,
                &[
                    ("wall_ms", format!("{:.1}", run.wall_ms)),
                    ("threads", threads.to_string()),
                    (
                        "host_cores",
                        std::thread::available_parallelism()
                            .map_or(0, std::num::NonZeroUsize::get)
                            .to_string(),
                    ),
                ],
            )
        } else {
            run.core_json.clone()
        };
        if std::fs::write(&out_path, &contents).is_err() {
            fail(&format!("cannot write report to {out_path}"));
        }
        println!("compare: wrote {} bytes to {out_path}", contents.len());
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {baseline_path}: {e}")));
        let drift = snapshot::diff_context(&baseline, &run.core_json, 3, 60);
        if drift.is_empty() {
            println!("gate: report matches baseline {baseline_path} — OK");
        } else {
            eprintln!("gate: report drifted from baseline {baseline_path}:");
            for line in &drift {
                eprintln!("  {line}");
            }
            eprintln!(
                "If the change is intentional, bump the schema if the core \
                 format changed and regenerate: cargo run --release --bin \
                 compare_report -- --no-advisory --out {baseline_path}"
            );
            std::process::exit(1);
        }
    }
}
