//! Regenerates paper **Table III**: throughput utilization of NTT and
//! automorphism on the cycle-level VPU simulator (m = 64), printed next
//! to the paper's values.

use uvpu_bench::{delta_cell, measure_table3, PAPER_TABLE3};

fn main() {
    let m = 64;
    let log_sizes: Vec<u32> = PAPER_TABLE3.iter().map(|&(l, _, _)| l).collect();
    let rows = measure_table3(m, &log_sizes);
    if uvpu_bench::json::json_requested() {
        use uvpu_bench::json::Value;
        let json_rows: Vec<Vec<(&str, Value)>> = rows
            .iter()
            .zip(PAPER_TABLE3)
            .map(|(r, p)| {
                vec![
                    ("log_n", Value::Int(i64::from(r.log_n))),
                    ("ntt_utilization", Value::Num(100.0 * r.ntt_utilization)),
                    ("paper_ntt", Value::Num(p.1)),
                    (
                        "automorphism_utilization",
                        Value::Num(100.0 * r.automorphism_utilization),
                    ),
                ]
            })
            .collect();
        println!("{}", uvpu_bench::json::rows_to_json(&json_rows));
        return;
    }
    println!("TABLE III — THROUGHPUT UTILIZATION, m = {m} (measured vs paper)");
    println!(
        "{:<6} {:<18} {:>10} {:>10} {:>8} | {:>14} {:>12}",
        "N", "dims", "NTT", "paper", "Δ", "Automorphism", "paper"
    );
    println!("{}", "-".repeat(88));
    for (row, paper) in rows.iter().zip(PAPER_TABLE3) {
        let dims: Vec<String> = row.dims[..row.dim_count]
            .iter()
            .map(ToString::to_string)
            .collect();
        println!(
            "2^{:<4} {:<18} {:>9.2}% {:>9.2}% {:>8} | {:>13.0}% {:>11.0}%",
            row.log_n,
            dims.join("x"),
            100.0 * row.ntt_utilization,
            paper.1,
            delta_cell(100.0 * row.ntt_utilization, paper.1),
            100.0 * row.automorphism_utilization,
            paper.2,
        );
    }
    println!();
    println!("shape checks: dip entering a new dimension after 2^12 and 2^18; automorphism always 100% (single network pass per column).");
}
