//! Utilization & energy attribution report: runs the reference
//! workload with a [`ProfilerSink`](uvpu_metrics::profiler::ProfilerSink)
//! attached to every layer and writes the versioned
//! `BENCH_metrics.json` snapshot (schema: [`uvpu_metrics::snapshot`]).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin metrics_report -- \
//!     [--threads N] [--smoke] [--out PATH] [--no-advisory] [--check BASELINE]
//! ```
//!
//! - `--threads N` pins the `uvpu-par` worker pool. The snapshot core is
//!   byte-identical for any value; only the advisory wall-clock changes.
//! - `--smoke` runs the reduced-size variant (CI fast path).
//! - `--out PATH` writes the snapshot there (default `BENCH_metrics.json`;
//!   `-` skips writing).
//! - `--no-advisory` omits the advisory section, producing a file that is
//!   byte-comparable with `cmp`.
//! - `--check BASELINE` is the regression gate: after the run, the
//!   deterministic core is diffed line-by-line against the committed
//!   baseline (advisory sections on either side are ignored). Any drift
//!   in cycle totals, utilization, energy attribution, or schema prints
//!   the differing lines and exits nonzero. Wall-clock never gates.
//!
//! Prints one machine-readable summary line:
//!
//! ```text
//! METRICS workload=ckks_mul_rescale variant=full threads=4 cycles=12345 utilization=0.8123 energy_pj=123456.7 wall_ms=81.2
//! ```

use uvpu_bench::metrics_workload;
use uvpu_metrics::snapshot;

fn main() {
    let mut out_path = "BENCH_metrics.json".to_string();
    let mut smoke = false;
    let mut advisory = true;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let t: usize = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads takes a positive integer");
                uvpu_par::set_thread_override(Some(t));
            }
            "--smoke" => smoke = true,
            "--no-advisory" => advisory = false,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check = Some(args.next().expect("--check needs a baseline path")),
            other => panic!("unknown argument: {other}"),
        }
    }

    let threads = uvpu_par::max_threads();
    let run = metrics_workload::run(smoke);

    println!(
        "METRICS workload={} variant={} threads={threads} cycles={} \
         utilization={:.4} energy_pj={:.1} wall_ms={:.1}",
        metrics_workload::WORKLOAD,
        if smoke { "smoke" } else { "full" },
        run.cycles,
        run.utilization,
        run.energy_pj,
        run.wall_ms
    );

    if out_path != "-" {
        let contents = if advisory {
            // Pool counters are advisory: hit/miss splits depend on the
            // thread count and warm-up history (only the outputs are
            // required to be deterministic).
            let pool = uvpu_math::pool::stats();
            snapshot::with_advisory(
                &run.core_json,
                &[
                    ("wall_ms", format!("{:.1}", run.wall_ms)),
                    ("threads", threads.to_string()),
                    (
                        "host_cores",
                        std::thread::available_parallelism()
                            .map_or(0, std::num::NonZeroUsize::get)
                            .to_string(),
                    ),
                    ("kernel.pool.hits", pool.hits.to_string()),
                    ("kernel.pool.misses", pool.misses.to_string()),
                    ("kernel.pool.bytes_live", pool.bytes_live.to_string()),
                ],
            )
        } else {
            run.core_json.clone()
        };
        std::fs::write(&out_path, &contents).expect("write snapshot");
        println!("metrics: wrote {} bytes to {out_path}", contents.len());
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let drift = snapshot::diff(&baseline, &run.core_json, 20);
        if drift.is_empty() {
            println!("gate: snapshot matches baseline {baseline_path} — OK");
        } else {
            eprintln!(
                "gate: snapshot drifted from baseline {baseline_path} ({} lines):",
                drift.len()
            );
            for line in &drift {
                eprintln!("  {line}");
            }
            eprintln!(
                "If the change is intentional, regenerate the baseline: \
                 cargo run --release --bin metrics_report -- --no-advisory --out {baseline_path}"
            );
            std::process::exit(1);
        }
    }
}
