//! Utilization & energy attribution report: runs the reference
//! workload with a [`ProfilerSink`](uvpu_metrics::profiler::ProfilerSink)
//! attached to every layer and writes the versioned
//! `BENCH_metrics.json` snapshot (schema: [`uvpu_metrics::snapshot`]).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin metrics_report -- \
//!     [--threads N] [--smoke] [--out PATH] [--no-advisory] [--check BASELINE]
//! ```
//!
//! - `--threads N` pins the `uvpu-par` worker pool. The snapshot core is
//!   byte-identical for any value; only the advisory wall-clock changes.
//! - `--smoke` runs the reduced-size variant (CI fast path).
//! - `--out PATH` writes the snapshot there (default `BENCH_metrics.json`;
//!   `-` skips writing).
//! - `--no-advisory` omits the advisory section, producing a file that is
//!   byte-comparable with `cmp`.
//! - `--check BASELINE` is the regression gate: after the run, the
//!   deterministic core is diffed against the committed baseline
//!   (advisory sections on either side are ignored). Any drift in cycle
//!   totals, utilization, energy attribution, or schema prints
//!   unified-diff hunks with ±3 lines of context — so the report names
//!   *which section* drifted — and exits 1. Wall-clock never gates.
//!
//! All usage errors (unknown flags, malformed values, unreadable
//! baselines) exit 1 with a message on stderr — never a panic — so
//! `set -e` shell gates fail cleanly and uniformly.
//!
//! Prints one machine-readable summary line:
//!
//! ```text
//! METRICS workload=ckks_mul_rescale variant=full threads=4 cycles=12345 utilization=0.8123 energy_pj=123456.7 wall_ms=81.2
//! ```

use uvpu_bench::metrics_workload;
use uvpu_metrics::snapshot;

fn fail(msg: &str) -> ! {
    eprintln!("metrics_report: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut out_path = "BENCH_metrics.json".to_string();
    let mut smoke = false;
    let mut advisory = true;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| fail("--threads needs a value"));
                let t: usize = raw
                    .parse()
                    .unwrap_or_else(|_| fail("--threads takes a positive integer"));
                uvpu_par::set_thread_override(Some(t));
            }
            "--smoke" => smoke = true,
            "--no-advisory" => advisory = false,
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out needs a path")),
            "--check" => {
                check = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--check needs a baseline path")),
                );
            }
            other => fail(&format!("unknown argument: {other}")),
        }
    }

    let threads = uvpu_par::max_threads();
    let run = metrics_workload::run(smoke);

    println!(
        "METRICS workload={} variant={} threads={threads} cycles={} \
         utilization={:.4} energy_pj={:.1} wall_ms={:.1}",
        metrics_workload::WORKLOAD,
        if smoke { "smoke" } else { "full" },
        run.cycles,
        run.utilization,
        run.energy_pj,
        run.wall_ms
    );

    if out_path != "-" {
        let contents = if advisory {
            // Pool counters are advisory: hit/miss splits depend on the
            // thread count and warm-up history (only the outputs are
            // required to be deterministic).
            let pool = uvpu_math::pool::stats();
            // Compact capacity-class census, e.g. "4096:2+1,8192:0+3"
            // (len:local+global). Advisory and an undercount by design:
            // only the calling thread's free-list and the global spill
            // are visible from here.
            let classes = uvpu_math::pool::class_stats()
                .iter()
                .map(|c| format!("{}:{}+{}", c.len, c.local, c.global))
                .collect::<Vec<_>>()
                .join(",");
            snapshot::with_advisory(
                &run.core_json,
                &[
                    ("wall_ms", format!("{:.1}", run.wall_ms)),
                    ("threads", threads.to_string()),
                    (
                        "host_cores",
                        std::thread::available_parallelism()
                            .map_or(0, std::num::NonZeroUsize::get)
                            .to_string(),
                    ),
                    ("kernel.pool.hits", pool.hits.to_string()),
                    ("kernel.pool.misses", pool.misses.to_string()),
                    ("kernel.pool.bytes_live", pool.bytes_live.to_string()),
                    ("kernel.pool.bytes_peak", pool.bytes_peak.to_string()),
                    ("kernel.pool.classes", format!("\"{classes}\"")),
                ],
            )
        } else {
            run.core_json.clone()
        };
        if std::fs::write(&out_path, &contents).is_err() {
            fail(&format!("cannot write snapshot to {out_path}"));
        }
        println!("metrics: wrote {} bytes to {out_path}", contents.len());
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {baseline_path}: {e}")));
        let drift = snapshot::diff_context(&baseline, &run.core_json, 3, 60);
        if drift.is_empty() {
            println!("gate: snapshot matches baseline {baseline_path} — OK");
        } else {
            eprintln!("gate: snapshot drifted from baseline {baseline_path}:");
            for line in &drift {
                eprintln!("  {line}");
            }
            eprintln!(
                "If the change is intentional, regenerate the baseline: \
                 cargo run --release --bin metrics_report -- --no-advisory --out {baseline_path}"
            );
            std::process::exit(1);
        }
    }
}
