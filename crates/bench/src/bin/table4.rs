//! Regenerates paper **Table IV**: area/power scalability of the unified
//! inter-lane network from 4 to 256 lanes (the model's calibration
//! fixture — residuals show the fit quality).

use uvpu_bench::{delta_cell, PAPER_TABLE4};
use uvpu_hw_model::tables::table4;
use uvpu_hw_model::tech::TechParams;

fn main() {
    let rows = table4(&TechParams::asap7());
    if uvpu_bench::json::json_requested() {
        use uvpu_bench::json::Value;
        let json_rows: Vec<Vec<(&str, Value)>> = rows
            .iter()
            .zip(PAPER_TABLE4)
            .map(|(r, p)| {
                vec![
                    ("lanes", Value::Int(r.lanes as i64)),
                    ("area_um2", Value::Num(r.area_um2)),
                    ("paper_area_um2", Value::Num(p.1)),
                    ("power_mw", Value::Num(r.power_mw)),
                    ("paper_power_mw", Value::Num(p.2)),
                ]
            })
            .collect();
        println!("{}", uvpu_bench::json::rows_to_json(&json_rows));
        return;
    }
    println!("TABLE IV — INTER-LANE NETWORK SCALABILITY (model vs paper)");
    println!(
        "{:<8} {:>12} {:>12} {:>8} | {:>10} {:>10} {:>8}",
        "Lanes", "Area um^2", "paper", "Δ", "Power mW", "paper", "Δ"
    );
    println!("{}", "-".repeat(78));
    for (row, paper) in rows.iter().zip(PAPER_TABLE4) {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>8} | {:>10.2} {:>10.2} {:>8}",
            row.lanes,
            row.area_um2,
            paper.1,
            delta_cell(row.area_um2, paper.1),
            row.power_mw,
            paper.2,
            delta_cell(row.power_mw, paper.2),
        );
    }
    let growth_area = rows.last().unwrap().area_um2 / rows[0].area_um2;
    let growth_power = rows.last().unwrap().power_mw / rows[0].power_mw;
    println!();
    println!(
        "4 -> 256 lanes (64x): area x{growth_area:.0} (paper ~135x), power x{growth_power:.0} (paper ~127x) — slightly super-linear, ~{:.2}x per lane doubling",
        growth_area.powf(1.0 / 6.0)
    );
}
