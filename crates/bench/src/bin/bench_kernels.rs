//! Kernel benchmark: allocation accounting and output digests for the
//! fused lazy-reduction pipelines (`BENCH_kernels.json`, schema
//! `uvpu-kernels/v1`).
//!
//! The binary installs a counting global allocator, warms the polynomial
//! pool, and then measures every hot kernel in steady state:
//!
//! - `ntt_forward` / `ntt_inverse` — the Harvey lazy-reduction transforms
//!   of `uvpu_math::kernel` on pooled scratch;
//! - `ntt_pointwise_intt` — the fused forward → pointwise → inverse
//!   pipeline;
//! - `ntt_accumulate_pair` — the eval-domain keyswitch inner loop;
//! - `bfv_ring_mul_q` — the BFV ring product built on the fusion;
//! - `ckks_rns_mul` — `RnsPoly::mul` across the whole RNS chain;
//! - `ntt_forward_fourstep_*` / `ntt_forward_direct_*` /
//!   `ntt_inverse_fourstep_16k` — the large-ring (`N = 2¹⁴/2¹⁶/2¹⁷`)
//!   four-step dispatch against the stage-major kernel at the same
//!   size; equal digests per size witness the bitwise identity of the
//!   cache-blocked decomposition, and the advisory ns/op pair records
//!   the crossover.
//!
//! The deterministic core of the snapshot holds, per kernel, the FNV-1a
//! digest of the output (bit-exactness witness) and the steady-state heap
//! allocations per op (the pool-amortization witness: 0 across the
//! board, including `RnsPoly::mul`, whose residue container now
//! round-trips through a thread-local free-list).
//! Wall-clock ns/op and the pool hit/miss counters are advisory only —
//! they depend on the host and warm-up history and never gate.
//!
//! Measurement always runs with the worker pool pinned to one thread so
//! every pool borrow and recycle lands on the same thread-local free
//! list; digests are thread-invariant anyway (see
//! `tests/kernel_consistency.rs`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin bench_kernels -- \
//!     [--smoke] [--out PATH] [--no-advisory] [--check BASELINE]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use uvpu_metrics::snapshot;

/// Counts every heap allocation made by the process (relaxed: the
/// measured region is single-threaded).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// FNV-1a over the coefficients, the digest stamped into the snapshot.
fn fnv1a(mut h: u64, xs: &[u64]) -> u64 {
    for &x in xs {
        h ^= x;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

struct CaseResult {
    name: &'static str,
    n: usize,
    digest: u64,
    allocs_per_op: u64,
    ns_per_op: f64,
}

/// Timing rounds per case: the reported ns/op is the fastest round's
/// mean, which shrugs off scheduler/steal-time spikes on shared hosts.
/// Allocation accounting spans every round (it must be exactly stable
/// anyway, and is).
const ROUNDS: usize = 4;

/// Runs `op` (which returns the digest of its output) through warm-up
/// and measured steady-state rounds, checking digest stability.
fn measure(
    name: &'static str,
    n: usize,
    warmup: usize,
    iters: usize,
    mut op: impl FnMut() -> u64,
) -> CaseResult {
    let mut digest = 0u64;
    for _ in 0..warmup {
        digest = op();
    }
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let mut best_ns = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for _ in 0..iters {
            let d = op();
            assert_eq!(d, digest, "{name}: output digest drifted across iterations");
        }
        let elapsed = start.elapsed();
        best_ns = best_ns.min(elapsed.as_nanos() as f64 / iters as f64);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    CaseResult {
        name,
        n,
        digest,
        allocs_per_op: allocs / (ROUNDS * iters) as u64,
        ns_per_op: best_ns,
    }
}

fn run_cases(smoke: bool) -> Vec<CaseResult> {
    use uvpu_math::modular::Modulus;
    use uvpu_math::ntt::NttTable;
    use uvpu_math::primes::ntt_prime;
    use uvpu_math::{kernel, pool};

    let n = if smoke { 1usize << 8 } else { 1usize << 12 };
    let (warmup, iters) = if smoke { (4usize, 16usize) } else { (8, 64) };
    let q = Modulus::new(ntt_prime(50, n).expect("prime")).expect("modulus");
    let table = NttTable::new(q, n).expect("table");
    let a: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 7 + 3)).collect();
    let b: Vec<u64> = (0..n as u64).map(|i| q.reduce_u64(i * 13 + 5)).collect();

    let mut out = Vec::with_capacity(8);

    out.push(measure("ntt_forward", n, warmup, iters, || {
        let mut x = pool::take_copy(&a);
        kernel::forward_inplace(&table, &mut x);
        let d = fnv1a(FNV_OFFSET, &x);
        pool::recycle(x);
        d
    }));

    out.push(measure("ntt_inverse", n, warmup, iters, || {
        let mut x = pool::take_copy(&a);
        kernel::inverse_inplace(&table, &mut x);
        let d = fnv1a(FNV_OFFSET, &x);
        pool::recycle(x);
        d
    }));

    out.push(measure("ntt_pointwise_intt", n, warmup, iters, || {
        let mut x = pool::take_scratch(n);
        kernel::ntt_pointwise_intt(&table, &a, &b, &mut x);
        let d = fnv1a(FNV_OFFSET, &x);
        pool::recycle(x);
        d
    }));

    out.push(measure("ntt_accumulate_pair", n, warmup, iters, || {
        let mut acc0 = pool::take_zeroed(n);
        let mut acc1 = pool::take_zeroed(n);
        kernel::ntt_accumulate_pair(&table, &a, &b, &a, &mut acc0, &mut acc1);
        let d = fnv1a(fnv1a(FNV_OFFSET, &acc0), &acc1);
        pool::recycle(acc0);
        pool::recycle(acc1);
        d
    }));

    {
        use uvpu_bfv::cipher::ring_mul_q;
        use uvpu_bfv::params::BfvParams;

        let params = BfvParams::new(n, 50).expect("bfv params");
        let qb = params.modulus();
        let ba: Vec<u64> = (0..n as u64).map(|i| qb.reduce_u64(i * 7 + 3)).collect();
        let bb: Vec<u64> = (0..n as u64).map(|i| qb.reduce_u64(i * 13 + 5)).collect();
        out.push(measure("bfv_ring_mul_q", n, warmup, iters, || {
            let p = ring_mul_q(&params, &ba, &bb).expect("ring_mul_q");
            let d = fnv1a(FNV_OFFSET, &p);
            uvpu_math::pool::recycle(p);
            d
        }));
    }

    {
        use uvpu_ckks::params::{CkksContext, CkksParams};
        use uvpu_ckks::rns_poly::RnsPoly;

        let ckks_n = if smoke { 1usize << 6 } else { 1usize << 8 };
        let level = 3usize;
        let ctx = CkksContext::new(CkksParams::new(ckks_n, level, 40).expect("ckks params"))
            .expect("ckks context");
        let coeffs_a: Vec<i64> = (0..ckks_n as i64).map(|k| k % 41 - 20).collect();
        let coeffs_b: Vec<i64> = (0..ckks_n as i64).map(|k| (k * 3) % 37 - 18).collect();
        let ra = RnsPoly::from_signed(&ctx, level, &coeffs_a)
            .expect("rns a")
            .to_evaluation(&ctx);
        let rb = RnsPoly::from_signed(&ctx, level, &coeffs_b)
            .expect("rns b")
            .to_evaluation(&ctx);
        out.push(measure("ckks_rns_mul", ckks_n, warmup, iters, || {
            let r = ra.mul(&rb).expect("rns mul");
            let mut d = FNV_OFFSET;
            for i in 0..=level {
                d = fnv1a(d, r.residue(i).coeffs());
            }
            r.recycle();
            d
        }));
    }

    {
        // Large-ring forward NTTs: the dispatched entry point (four-step
        // at these sizes) against the stage-major direct kernel. Equal
        // digests per size are the bitwise-identity witness; the
        // advisory ns/op pair is the crossover evidence.
        use uvpu_math::cache;

        let sizes: &[(usize, &'static str, &'static str, usize, usize)] = if smoke {
            &[(
                1 << 14,
                "ntt_forward_fourstep_16k",
                "ntt_forward_direct_16k",
                2,
                6,
            )]
        } else {
            &[
                (
                    1 << 14,
                    "ntt_forward_fourstep_16k",
                    "ntt_forward_direct_16k",
                    4,
                    16,
                ),
                (
                    1 << 16,
                    "ntt_forward_fourstep_64k",
                    "ntt_forward_direct_64k",
                    4,
                    24,
                ),
                (
                    1 << 17,
                    "ntt_forward_fourstep_128k",
                    "ntt_forward_direct_128k",
                    3,
                    12,
                ),
            ]
        };
        for &(ln, four_name, direct_name, warm, its) in sizes {
            let q = Modulus::new(ntt_prime(50, ln).expect("prime")).expect("modulus");
            let table = cache::ntt_table(q, ln).expect("table");
            let big: Vec<u64> = (0..ln as u64)
                .map(|i| q.reduce_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)))
                .collect();
            out.push(measure(four_name, ln, warm, its, || {
                let mut x = pool::take_copy(&big);
                kernel::forward_inplace(&table, &mut x);
                let d = fnv1a(FNV_OFFSET, &x);
                pool::recycle(x);
                d
            }));
            out.push(measure(direct_name, ln, warm, its, || {
                let mut x = pool::take_copy(&big);
                kernel::forward_inplace_direct(&table, &mut x);
                let d = fnv1a(FNV_OFFSET, &x);
                pool::recycle(x);
                d
            }));
            assert_eq!(
                out[out.len() - 2].digest,
                out[out.len() - 1].digest,
                "four-step and direct digests must match at n={ln}"
            );
        }

        // Inverse dispatch coverage at the smallest large size.
        let ln = 1usize << 14;
        let q = Modulus::new(ntt_prime(50, ln).expect("prime")).expect("modulus");
        let table = cache::ntt_table(q, ln).expect("table");
        let big: Vec<u64> = (0..ln as u64)
            .map(|i| q.reduce_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)))
            .collect();
        out.push(measure("ntt_inverse_fourstep_16k", ln, 2, 6, || {
            let mut x = pool::take_copy(&big);
            kernel::inverse_inplace(&table, &mut x);
            let d = fnv1a(FNV_OFFSET, &x);
            pool::recycle(x);
            d
        }));
    }

    out
}

fn core_json(variant: &str, cases: &[CaseResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"uvpu-kernels/v1\",\n");
    let _ = writeln!(s, "  \"variant\": \"{variant}\",");
    s.push_str("  \"threads\": 1,\n");
    s.push_str("  \"kernels\": {\n");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    \"{}\": {{ \"n\": {}, \"digest\": \"0x{:016x}\", \"allocs_per_op\": {} }}{comma}",
            c.name, c.n, c.digest, c.allocs_per_op
        );
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() {
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut smoke = false;
    let mut advisory = true;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--no-advisory" => advisory = false,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check = Some(args.next().expect("--check needs a baseline path")),
            other => panic!("unknown argument: {other}"),
        }
    }
    let variant = if smoke { "smoke" } else { "full" };

    // The deterministic core requires all pool traffic on one thread.
    uvpu_par::set_thread_override(Some(1));

    let wall = Instant::now();
    let cases = run_cases(smoke);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let core = core_json(variant, &cases);
    let pool_stats = uvpu_math::pool::stats();

    for c in &cases {
        println!(
            "KERNEL name={} variant={variant} n={} digest=0x{:016x} allocs_per_op={} ns_per_op={:.0}",
            c.name, c.n, c.digest, c.allocs_per_op, c.ns_per_op
        );
    }

    if out_path != "-" {
        let contents = if advisory {
            let mut fields: Vec<(String, String)> = cases
                .iter()
                .map(|c| {
                    (
                        format!("ns_per_op.{}", c.name),
                        format!("{:.1}", c.ns_per_op),
                    )
                })
                .collect();
            fields.push(("kernel.pool.hits".to_string(), pool_stats.hits.to_string()));
            fields.push((
                "kernel.pool.misses".to_string(),
                pool_stats.misses.to_string(),
            ));
            fields.push((
                "kernel.pool.bytes_live".to_string(),
                pool_stats.bytes_live.to_string(),
            ));
            fields.push((
                "kernel.pool.bytes_peak".to_string(),
                pool_stats.bytes_peak.to_string(),
            ));
            fields.push(("wall_ms".to_string(), format!("{wall_ms:.1}")));
            fields.push((
                "host_cores".to_string(),
                std::thread::available_parallelism()
                    .map_or(0, std::num::NonZeroUsize::get)
                    .to_string(),
            ));
            let borrowed: Vec<(&str, String)> = fields
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            snapshot::with_advisory(&core, &borrowed)
        } else {
            core.clone()
        };
        std::fs::write(&out_path, &contents).expect("write snapshot");
        println!("kernels: wrote {} bytes to {out_path}", contents.len());
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let drift = snapshot::diff(&baseline, &core, 20);
        if drift.is_empty() {
            println!("gate: kernel snapshot matches baseline {baseline_path} — OK");
        } else {
            eprintln!(
                "gate: kernel snapshot drifted from baseline {baseline_path} ({} lines):",
                drift.len()
            );
            for line in &drift {
                eprintln!("  {line}");
            }
            eprintln!(
                "If the change is intentional, regenerate the baseline: \
                 cargo run --release --bin bench_kernels -- --smoke --no-advisory --out {baseline_path}"
            );
            std::process::exit(1);
        }
    }
}
