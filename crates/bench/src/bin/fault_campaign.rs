//! Fault-injection campaign driver: sweeps a site × kind × rate grid
//! through the recovery scheduler and writes the deterministic
//! `uvpu-fault/v1` JSON coverage report (see
//! [`uvpu_fault::campaign`]).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin fault_campaign -- \
//!     [--threads N] [--smoke] [--seed S] [--out PATH] [--check BASELINE]
//! ```
//!
//! - `--threads N` pins the `uvpu-par` worker pool. The report is
//!   byte-identical for any value: every kernel attempt runs pinned to
//!   one thread inside the executor, so this flag only proves the
//!   invariance (CI runs the smoke campaign at 1, 2 and 4 threads and
//!   `cmp`s the outputs).
//! - `--smoke` runs the reduced grid (CI fast path); the default is the
//!   full grid with higher rates, a larger ring, and stuck-at-zero
//!   coverage.
//! - `--seed S` sets the campaign base seed (default 3404).
//! - `--out PATH` writes the JSON report there (default
//!   `BENCH_fault.json`; `-` skips writing).
//! - `--check BASELINE` is the regression gate: the report is diffed
//!   line-by-line against the committed baseline and any drift —
//!   coverage, detection counts, retry/quarantine behavior — prints the
//!   differing lines and exits nonzero.
//!
//! Prints one machine-readable summary line:
//!
//! ```text
//! FAULT variant=smoke seed=3404 cells=16 injected=123 detected=45 \
//!     recovered=12 silent=0 unrecoverable=0 wall_ms=81.2
//! ```

use uvpu_fault::campaign::{run_campaign, CampaignConfig};
use uvpu_metrics::snapshot;

fn main() {
    let mut out_path = "BENCH_fault.json".to_string();
    let mut smoke = false;
    let mut seed = 3404u64;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let t: usize = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads takes a positive integer");
                uvpu_par::set_thread_override(Some(t));
            }
            "--smoke" => smoke = true,
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed takes a u64");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check = Some(args.next().expect("--check needs a baseline path")),
            other => panic!("unknown argument: {other}"),
        }
    }

    let cfg = if smoke {
        CampaignConfig::smoke(seed)
    } else {
        CampaignConfig::full(seed)
    };
    let start = std::time::Instant::now();
    let report = run_campaign(&cfg).expect("campaign run");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let json = report.to_json();

    let injected: u64 = report.cells.iter().map(|c| c.injected).sum();
    let detected: u64 = report.cells.iter().map(|c| c.detected).sum();
    let recovered: u64 = report.cells.iter().map(|c| c.recovered).sum();
    let unrecoverable: u64 = report.cells.iter().map(|c| c.unrecoverable).sum();
    println!(
        "FAULT variant={} seed={seed} cells={} injected={injected} detected={detected} \
         recovered={recovered} silent={} unrecoverable={unrecoverable} wall_ms={wall_ms:.1}",
        if smoke { "smoke" } else { "full" },
        report.cells.len(),
        report.total_silent(),
    );

    if out_path != "-" {
        std::fs::write(&out_path, &json).expect("write report");
        println!("fault: wrote {} bytes to {out_path}", json.len());
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let drift = snapshot::diff(&baseline, &json, 20);
        if drift.is_empty() {
            println!("gate: report matches baseline {baseline_path} — OK");
        } else {
            eprintln!(
                "gate: report drifted from baseline {baseline_path} ({} lines):",
                drift.len()
            );
            for line in &drift {
                eprintln!("  {line}");
            }
            eprintln!(
                "If the change is intentional, regenerate the baseline: \
                 cargo run --release --bin fault_campaign -- --smoke --out {baseline_path}"
            );
            std::process::exit(1);
        }
    }
}
