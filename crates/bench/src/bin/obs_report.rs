//! Observability report: runs the reference workload with a
//! [`TreeProfilerSink`](uvpu_metrics::treeprof::TreeProfilerSink)
//! attached to every layer and writes the versioned `BENCH_obs.json`
//! call-tree snapshot (schema: [`uvpu_metrics::report`]), plus optional
//! flamegraph / Perfetto artifacts.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin obs_report -- \
//!     [--threads N] [--smoke] [--out PATH] [--no-advisory] \
//!     [--flame PATH] [--perfetto PATH] [--check BASELINE]
//! ```
//!
//! - `--threads N` pins the `uvpu-par` worker pool. The snapshot core
//!   and the flamegraph are byte-identical for any value; only the
//!   advisory wall-clock changes.
//! - `--smoke` runs the reduced-size variant (CI fast path).
//! - `--out PATH` writes the snapshot there (default `BENCH_obs.json`;
//!   `-` skips writing).
//! - `--no-advisory` omits the advisory section, producing a file that
//!   is byte-comparable with `cmp`.
//! - `--flame PATH` writes the collapsed-stack flamegraph text
//!   (`seg;seg;leaf cycles` per line — feed it to `flamegraph.pl`,
//!   inferno, or speedscope). The snapshot's FNV-1a digest pins these
//!   bytes, so the `--check` gate covers the flamegraph transitively.
//! - `--perfetto PATH` writes the Perfetto-compatible tree summary
//!   (open at `ui.perfetto.dev`).
//! - `--check BASELINE` is the regression gate: the deterministic core
//!   is diffed against the committed baseline (advisory sections on
//!   either side ignored) and any drift is printed as unified-diff
//!   hunks with ±3 context lines before exiting 1. Wall-clock never
//!   gates.
//!
//! Before rendering, the library asserts the tree's self cycles and
//! per-component counts sum to the embedded flat profiler's bins
//! bit-exactly — so a report that exists at all has already proven the
//! obs-consistency criterion at runtime.
//!
//! Prints one machine-readable summary line:
//!
//! ```text
//! OBS workload=ckks_mul_rescale variant=full threads=4 paths=23 events=1234 cycles=12345 wall_ms=81.2
//! ```

use uvpu_bench::obs_workload;
use uvpu_metrics::snapshot;

fn fail(msg: &str) -> ! {
    eprintln!("obs_report: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut out_path = "BENCH_obs.json".to_string();
    let mut flame_path: Option<String> = None;
    let mut perfetto_path: Option<String> = None;
    let mut smoke = false;
    let mut advisory = true;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let raw = args
                    .next()
                    .unwrap_or_else(|| fail("--threads needs a value"));
                let t: usize = raw
                    .parse()
                    .unwrap_or_else(|_| fail("--threads takes a positive integer"));
                uvpu_par::set_thread_override(Some(t));
            }
            "--smoke" => smoke = true,
            "--no-advisory" => advisory = false,
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out needs a path")),
            "--flame" => {
                flame_path = Some(args.next().unwrap_or_else(|| fail("--flame needs a path")));
            }
            "--perfetto" => {
                perfetto_path = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--perfetto needs a path")),
                );
            }
            "--check" => {
                check = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--check needs a baseline path")),
                );
            }
            other => fail(&format!("unknown argument: {other}")),
        }
    }

    let threads = uvpu_par::max_threads();
    let run = obs_workload::run(smoke);

    println!(
        "OBS workload={} variant={} threads={threads} paths={} events={} cycles={} wall_ms={:.1}",
        obs_workload::WORKLOAD,
        if smoke { "smoke" } else { "full" },
        run.paths,
        run.events,
        run.cycles,
        run.wall_ms
    );

    if out_path != "-" {
        let contents = if advisory {
            snapshot::with_advisory(
                &run.core_json,
                &[
                    ("wall_ms", format!("{:.1}", run.wall_ms)),
                    ("events", run.events.to_string()),
                    ("threads", threads.to_string()),
                    (
                        "host_cores",
                        std::thread::available_parallelism()
                            .map_or(0, std::num::NonZeroUsize::get)
                            .to_string(),
                    ),
                ],
            )
        } else {
            run.core_json.clone()
        };
        if std::fs::write(&out_path, &contents).is_err() {
            fail(&format!("cannot write snapshot to {out_path}"));
        }
        println!("obs: wrote {} bytes to {out_path}", contents.len());
    }

    if let Some(path) = flame_path {
        if std::fs::write(&path, &run.flamegraph).is_err() {
            fail(&format!("cannot write flamegraph to {path}"));
        }
        println!(
            "obs: wrote {} flamegraph lines to {path}",
            run.flamegraph.lines().count()
        );
    }

    if let Some(path) = perfetto_path {
        if std::fs::write(&path, &run.perfetto_json).is_err() {
            fail(&format!("cannot write perfetto trace to {path}"));
        }
        println!(
            "obs: wrote {} bytes of perfetto trace to {path}",
            run.perfetto_json.len()
        );
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {baseline_path}: {e}")));
        let drift = snapshot::diff_context(&baseline, &run.core_json, 3, 60);
        if drift.is_empty() {
            println!("gate: snapshot matches baseline {baseline_path} — OK");
        } else {
            eprintln!("gate: snapshot drifted from baseline {baseline_path}:");
            for line in &drift {
                eprintln!("  {line}");
            }
            eprintln!(
                "If the change is intentional, bump the schema if the core \
                 format changed and regenerate: cargo run --release --bin \
                 obs_report -- --no-advisory --out {baseline_path}"
            );
            std::process::exit(1);
        }
    }
}
