//! Regenerates paper **Table II**: area and power of the permutation
//! network and the full VPU for F1 / BTS / ARK / SHARP / Ours, all
//! ported to the same 64-lane VPU, printed next to the paper's values.

use uvpu_bench::{delta_cell, PAPER_TABLE2};
use uvpu_hw_model::tables::table2;
use uvpu_hw_model::tech::TechParams;

fn main() {
    let tech = TechParams::asap7();
    let rows = table2(&tech, 64);
    if uvpu_bench::json::json_requested() {
        use uvpu_bench::json::Value;
        let json_rows: Vec<Vec<(&str, Value)>> = rows
            .iter()
            .map(|r| {
                vec![
                    ("design", Value::Str(r.design.to_string())),
                    ("network_area_um2", Value::Num(r.network_area_um2)),
                    ("network_area_ratio", Value::Num(r.network_area_ratio)),
                    ("vpu_area_um2", Value::Num(r.vpu_area_um2)),
                    ("network_power_mw", Value::Num(r.network_power_mw)),
                    ("vpu_power_mw", Value::Num(r.vpu_power_mw)),
                ]
            })
            .collect();
        println!("{}", uvpu_bench::json::rows_to_json(&json_rows));
        return;
    }
    println!("TABLE II — AREA AND POWER COMPARISON, 64 LANES (model vs paper)");
    println!(
        "{:<7} {:>14} {:>7} {:>7} | {:>14} {:>7} {:>7} | {:>10} {:>7} {:>7} | {:>10} {:>7} {:>7}",
        "Design",
        "Net um^2",
        "ratio",
        "Δpaper",
        "VPU um^2",
        "ratio",
        "Δpaper",
        "Net mW",
        "ratio",
        "Δpaper",
        "VPU mW",
        "ratio",
        "Δpaper",
    );
    println!("{}", "-".repeat(150));
    for (row, paper) in rows.iter().zip(PAPER_TABLE2) {
        assert_eq!(row.design, paper.0, "row order must match the paper");
        println!(
            "{:<7} {:>14.2} {:>6.2}x {:>7} | {:>14.2} {:>6.2}x {:>7} | {:>10.2} {:>6.2}x {:>7} | {:>10.2} {:>6.2}x {:>7}",
            row.design,
            row.network_area_um2,
            row.network_area_ratio,
            delta_cell(row.network_area_um2, paper.1),
            row.vpu_area_um2,
            row.vpu_area_ratio,
            delta_cell(row.vpu_area_um2, paper.2),
            row.network_power_mw,
            row.network_power_ratio,
            delta_cell(row.network_power_mw, paper.3),
            row.vpu_power_mw,
            row.vpu_power_ratio,
            delta_cell(row.vpu_power_mw, paper.4),
        );
    }
    let f1 = &rows[0];
    let ours = &rows[4];
    println!();
    println!(
        "headline: up to {:.1}x network area and {:.1}x network power savings; up to {:.2}x VPU area and {:.2}x VPU power (paper: 9.4x / 6.0x / 1.20x / 1.10x)",
        f1.network_area_ratio,
        f1.network_power_ratio,
        f1.vpu_area_um2 / ours.vpu_area_um2,
        f1.vpu_power_mw / ours.vpu_power_mw,
    );
}
