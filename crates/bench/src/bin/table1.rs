//! Regenerates paper **Table I**: the qualitative comparison of how
//! related FHE accelerator designs handle the NTT transpose and the
//! automorphism.

use uvpu_hw_model::tables::table1;

fn main() {
    println!("TABLE I — COMPARISON OF RELATED DESIGNS");
    println!("{:<8} {:<42} Automorphism", "Design", "Transpose in NTT");
    println!("{}", "-".repeat(100));
    for row in table1() {
        println!(
            "{:<8} {:<42} {}",
            row.design, row.transpose_in_ntt, row.automorphism
        );
    }
}
