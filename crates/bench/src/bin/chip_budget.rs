//! **Extension experiment**: the chip-level area/power budget of a full
//! Fig 1(a) accelerator (8 × 64-lane VPUs + 64 MiB SRAM + ring NoC) for
//! every permutation-hardware choice — how far the network savings carry
//! at whole-chip scope.

use uvpu_hw_model::chip::{ChipConfig, ChipModel};
use uvpu_hw_model::designs::DesignKind;
use uvpu_hw_model::tech::TechParams;

fn main() {
    let tech = TechParams::asap7();
    let cfg = ChipConfig::default();
    println!(
        "EXTENSION — CHIP BUDGET: {} x {}-lane VPUs, {} MiB SRAM, {}-bit ring NoC",
        cfg.vpus,
        cfg.lanes,
        cfg.sram_bytes >> 20,
        cfg.noc_link_bits
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "Design", "VPUs mm²", "SRAM mm²", "NoC mm²", "Total mm²", "ratio", "Power W", "perm share"
    );
    println!("{}", "-".repeat(96));
    let ours_total = ChipModel::new(cfg, DesignKind::Ours).total_area(&tech);
    for kind in DesignKind::ALL {
        let chip = ChipModel::new(cfg, kind);
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>9.3}x {:>10.2} {:>11.2}%",
            kind.name(),
            chip.vpus_area(&tech) / 1e6,
            chip.sram_area(&tech) / 1e6,
            chip.noc_area(&tech) / 1e6,
            chip.total_area(&tech) / 1e6,
            chip.total_area(&tech) / ours_total,
            chip.total_power(&tech) / 1e3,
            100.0 * chip.permutation_share(&tech),
        );
    }
    println!();
    println!(
        "the network savings dilute from 9.4x (network scope) to 1.2x (VPU scope) to the\n\
         chip ratios above — consistent with the paper's 'lanes dominate' observation,\n\
         and still meaningful silicon at 7 nm prices."
    );
}
