//! Regenerates paper **Fig 2**: the inter-lane network structure — two
//! constant-geometry stages plus the multi-stage shift network — shown
//! for the paper's m = 8 example, with the control-bit budget and a live
//! demonstration of the §IV-B sub-column shift example.

use uvpu_core::control::{AutomorphismControlTable, ShiftControls};
use uvpu_core::network::{CgDirection, InterLaneNetwork};

fn main() {
    let m = 8;
    let net = InterLaneNetwork::new(m).expect("valid lane count");
    println!("FIG 2 — THE INTER-LANE NETWORK (m = {m} example)");
    println!(
        "stages: {} CG + {} shift = {} MUX rows; {} control bits per traversal",
        net.cg_stages(),
        net.shift_stages(),
        net.total_stages(),
        net.control_bits()
    );
    println!();

    let lanes: Vec<u64> = (0..m as u64).collect();
    println!(
        "DIT CG stage (unshuffle): {:?} -> {:?}",
        lanes,
        net.cg_pass(&lanes, CgDirection::Dit)
    );
    println!(
        "DIF CG stage (shuffle)  : {:?} -> {:?}",
        lanes,
        net.cg_pass(&lanes, CgDirection::Dif)
    );
    println!();

    println!("shift stages (distance m/2 ... 1), each class independently controlled:");
    let levels = net.shift_stages() as usize;
    for level in (0..levels).rev() {
        let d = 1usize << level;
        let bits: Vec<Vec<bool>> = (0..levels).map(|l| vec![l == level; 1 << l]).collect();
        let controls = ShiftControls::from_bits(m, bits).expect("valid bits");
        println!(
            "  distance {d}: {} control signal(s); all-selected pass: {:?} -> {:?}",
            controls.level_bits(level).len(),
            lanes,
            net.shift_pass(&lanes, &controls)
        );
    }
    println!();

    // The paper's worked example: even sub-column shifted by 2 positions,
    // odd sub-column by 3 (global distances 4 and 6), in ONE traversal.
    let controls = ShiftControls::from_bits(
        m,
        vec![
            vec![false],
            vec![false, true],
            vec![true, false, true, false],
        ],
    )
    .expect("valid bits");
    let out = net.shift_pass(&lanes, &controls);
    println!("§IV-B example: independent sub-column shifts in one pass:");
    println!("  input : {lanes:?}");
    println!("  output: {out:?}");
    println!(
        "  evens -> {:?} (shifted by 2), odds -> {:?} (shifted by 3)",
        (0..4).map(|i| out[2 * i]).collect::<Vec<_>>(),
        (0..4).map(|i| out[2 * i + 1]).collect::<Vec<_>>()
    );
    println!();

    let table = AutomorphismControlTable::new(64).expect("valid lane count");
    println!(
        "control SRAM at m = 64: {} words x 63 bits = {} bits (paper: \"about 2 kbits\")",
        32,
        table.sram_bits()
    );
}
