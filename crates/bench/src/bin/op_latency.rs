//! **Extension experiment**: the single-VPU latency census of the FHE
//! primitives — the cycles each homomorphic operation spends in a 64-lane
//! unified VPU across ring degrees and RNS limb counts (1 beat = 1 ns at
//! the paper's 1 GHz clock). The HRot column is the workload the paper's
//! automorphism hardware accelerates; note it is keyswitch-dominated,
//! which is exactly why the network must not add *extra* passes.

use uvpu_accel::workload::FheOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lanes = 64;
    println!("EXTENSION — SINGLE-VPU OPERATION LATENCY (beats = ns @ 1 GHz), {lanes} lanes");
    println!(
        "{:<8} {:<7} {:>12} {:>14} {:>14} {:>12} {:>14}",
        "N", "limbs", "HAdd", "HMult", "HRot", "NTT", "Automorphism"
    );
    println!("{}", "-".repeat(88));
    for log_n in [12u32, 13, 14] {
        let n = 1usize << log_n;
        for limbs in [2usize, 4, 8] {
            let hadd = FheOp::HAdd { n, limbs }.latency_beats(lanes)?;
            let hmult = FheOp::HMult { n, limbs }.latency_beats(lanes)?;
            let hrot = FheOp::HRot { n, limbs }.latency_beats(lanes)?;
            let ntt = FheOp::Ntt { n }.latency_beats(lanes)?;
            let auto = FheOp::Automorphism { n }.latency_beats(lanes)?;
            println!(
                "2^{:<6} {:<7} {:>12} {:>14} {:>14} {:>12} {:>14}",
                log_n, limbs, hadd, hmult, hrot, ntt, auto
            );
        }
    }
    println!();
    println!(
        "observations: HMult/HRot scale ~quadratically with limbs (keyswitch digits);\n\
         the bare automorphism is N/64 beats — data crosses the network exactly once."
    );
    Ok(())
}
