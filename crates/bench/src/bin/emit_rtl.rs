//! Emits the inter-lane network as synthesizable Verilog plus a
//! self-checking testbench (stimulus from the bit-exact simulator) —
//! the HDL artifact corresponding to the paper's RTL implementation.
//!
//! Usage: `cargo run -p uvpu-bench --bin emit_rtl [lanes] [out_dir]`
//! (defaults: 64 lanes, `./rtl`).

use std::fs;
use std::path::PathBuf;
use uvpu_core::rtl::{emit_network, emit_testbench, RtlConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().map_or(Ok(64), |a| a.parse())?;
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| "rtl".into()));
    let cfg = RtlConfig {
        m,
        word_bits: 64,
        module_name: format!("uvpu_network_m{m}"),
    };
    fs::create_dir_all(&out_dir)?;
    let net_path = out_dir.join(format!("{}.v", cfg.module_name));
    let tb_path = out_dir.join(format!("{}_tb.v", cfg.module_name));
    fs::write(&net_path, emit_network(&cfg)?)?;
    fs::write(&tb_path, emit_testbench(&cfg, 32, 0xDA7E_2025)?)?;
    println!("wrote {}", net_path.display());
    println!("wrote {}", tb_path.display());
    println!(
        "simulate with: iverilog -o tb {} {} && vvp tb",
        net_path.display(),
        tb_path.display()
    );
    Ok(())
}
