//! Site × rate fault campaigns with a deterministic JSON coverage
//! report.
//!
//! A campaign cell fixes one [`FaultSite`], one [`FaultKind`], and one
//! injection rate, then pushes a task list through the recovery
//! scheduler with a [`FaultyExecutor`] on slot 0. The cell's outcome is
//! classified against fault-free golden digests:
//!
//! - `injected`: words actually corrupted by the injector;
//! - `detected`: attempts flagged by an online detector;
//! - `recovered`: tasks that were flagged at least once and still
//!   completed with a clean attempt;
//! - `silent`: accepted task outputs whose digest differs from the
//!   golden digest — corruption that slipped past every detector;
//! - `unrecoverable`: `1` when the run aborted with
//!   [`AccelError::FaultUnrecoverable`].
//!
//! The report renders to sorted-key JSON with integer-only values, so
//! a fixed-seed campaign is byte-identical on every run and at every
//! `UVPU_THREADS` — gate it in CI with
//! [`uvpu_metrics::snapshot::diff`] like the metrics snapshots.

use crate::detect::standard_detectors;
use crate::exec::FaultyExecutor;
use crate::kernel::Kernel;
use crate::plan::{FaultKind, FaultPlan};
use crate::{digest64, mix64};
use std::collections::BTreeMap;
use uvpu_accel::config::AcceleratorConfig;
use uvpu_accel::machine::Accelerator;
use uvpu_accel::recovery::RetryPolicy;
use uvpu_accel::workload::{Task, TaskKind};
use uvpu_accel::AccelError;
use uvpu_core::trace::{FaultSite, NopSink};

/// The JSON schema tag of campaign reports. Bump on any shape change.
pub const SCHEMA: &str = "uvpu-fault/v1";

/// Shape of one campaign sweep.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base seed; each cell derives its own seed from it.
    pub seed: u64,
    /// Sites to sweep.
    pub sites: Vec<FaultSite>,
    /// Injection rates to sweep, in parts per million.
    pub rates_ppm: Vec<u32>,
    /// Fault kinds to sweep at every (site, rate) point.
    pub kinds: Vec<FaultKind>,
    /// The task list each cell runs.
    pub tasks: Vec<Task>,
    /// VPU lane count.
    pub lanes: usize,
    /// VPU count of the simulated machine.
    pub vpus: usize,
    /// Recovery policy for every cell.
    pub policy: RetryPolicy,
}

impl CampaignConfig {
    /// The CI smoke campaign: every site, two kinds, two rates, a
    /// small NTT/automorphism/element-wise task mix — finishes in
    /// seconds and exercises detection, retry, and quarantine.
    ///
    /// The task order matters for coverage: the list scheduler places
    /// task 0 on slot 0 (the faulty slot), and the automorphism kernel
    /// is the only one that routes data through the shift network — so
    /// it goes first. The cheap automorphism + element-wise slot-0
    /// timeline then leaves slot 0 earliest-free again when the second
    /// NTT is scheduled, covering the butterfly and CG-network sites.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        let n = 256;
        let tasks = vec![
            Task {
                kind: TaskKind::Automorphism,
                n,
                noc_bytes: 2 * n * 8,
            },
            Task {
                kind: TaskKind::Ntt,
                n,
                noc_bytes: 2 * n * 8,
            },
            Task {
                kind: TaskKind::Elementwise { passes: 2 },
                n,
                noc_bytes: 3 * n * 8,
            },
            Task {
                kind: TaskKind::Ntt,
                n,
                noc_bytes: 2 * n * 8,
            },
        ];
        Self {
            seed,
            sites: FaultSite::ALL.to_vec(),
            rates_ppm: vec![2_000, 20_000],
            kinds: vec![
                FaultKind::BitFlip { bit: 9 },
                FaultKind::StuckAtOne { bit: 5 },
            ],
            tasks,
            lanes: 16,
            vpus: 2,
            policy: RetryPolicy {
                max_retries: 5,
                backoff_cycles: 32,
                quarantine_threshold: 2,
            },
        }
    }

    /// The full campaign: the smoke grid plus higher rates, a larger
    /// ring, and stuck-at-zero coverage.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        let mut cfg = Self::smoke(seed);
        cfg.rates_ppm = vec![500, 5_000, 50_000];
        cfg.kinds = vec![
            FaultKind::BitFlip { bit: 9 },
            FaultKind::BitFlip { bit: 51 },
            FaultKind::StuckAtOne { bit: 5 },
            FaultKind::StuckAtZero { bit: 0 },
        ];
        cfg.tasks = cfg
            .tasks
            .iter()
            .map(|t| Task {
                n: 1 << 10,
                noc_bytes: t.noc_bytes * 4,
                ..*t
            })
            .collect();
        cfg
    }
}

/// Outcome of one (site, kind, rate) campaign cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReport {
    /// Site the cell injected at.
    pub site: FaultSite,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// Injection rate in ppm.
    pub rate_ppm: u32,
    /// Words corrupted by the injector.
    pub injected: u64,
    /// Attempts flagged by detectors.
    pub detected: u64,
    /// Tasks recovered after at least one flagged attempt.
    pub recovered: u64,
    /// Accepted outputs differing from the golden digest.
    pub silent: u64,
    /// 1 when the cell aborted as unrecoverable.
    pub unrecoverable: u64,
    /// Retry attempts the cell spent.
    pub retries: u64,
    /// Slots quarantined during the cell.
    pub quarantined: u64,
    /// Per-detector detection counts (sorted by detector name).
    pub detected_by: BTreeMap<String, u64>,
}

/// A full campaign sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Base seed the campaign ran with.
    pub seed: u64,
    /// Task count per cell.
    pub tasks_per_cell: usize,
    /// Per-cell outcomes, in sweep order (site-major, then kind, then
    /// rate — a deterministic order).
    pub cells: Vec<CellReport>,
}

impl CampaignReport {
    /// Total silently-corrupted accepted outputs across all cells (the
    /// number that must be zero for the coverage claim to hold).
    #[must_use]
    pub fn total_silent(&self) -> u64 {
        self.cells.iter().map(|c| c.silent).sum()
    }

    /// Renders the deterministic JSON document (sorted keys, integer
    /// values, trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.cells.len() * 256);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"tasks_per_cell\": {},\n", self.tasks_per_cell));
        out.push_str(&format!("  \"total_silent\": {},\n", self.total_silent()));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"site\": \"{}\",\n", c.site.name()));
            out.push_str(&format!("      \"kind\": \"{}\",\n", c.kind.name()));
            out.push_str(&format!("      \"rate_ppm\": {},\n", c.rate_ppm));
            out.push_str(&format!("      \"injected\": {},\n", c.injected));
            out.push_str(&format!("      \"detected\": {},\n", c.detected));
            out.push_str(&format!("      \"recovered\": {},\n", c.recovered));
            out.push_str(&format!("      \"silent\": {},\n", c.silent));
            out.push_str(&format!("      \"unrecoverable\": {},\n", c.unrecoverable));
            out.push_str(&format!("      \"retries\": {},\n", c.retries));
            out.push_str(&format!("      \"quarantined\": {},\n", c.quarantined));
            out.push_str("      \"detected_by\": {");
            let mut first = true;
            for (name, count) in &c.detected_by {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("\"{name}\": {count}"));
            }
            out.push_str("}\n");
            out.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Runs the campaign sweep: one recovery-scheduled execution of the
/// task list per (site, kind, rate) cell, classified against fault-free
/// golden digests.
///
/// # Errors
///
/// Kernel-mapping errors from the VPU simulator (an unrecoverable cell
/// is *not* an error — it is recorded in that cell's report).
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, AccelError> {
    // Golden digests: each task shape's fault-free output, memoized.
    let mut golden: BTreeMap<(String, usize), u64> = BTreeMap::new();
    for task in &cfg.tasks {
        let key = (task.kind.name(), task.n);
        if let std::collections::btree_map::Entry::Vacant(e) = golden.entry(key) {
            let kernel = Kernel::for_task(task, cfg.lanes)?;
            let (output, _) = uvpu_par::with_threads(1, || kernel.run(NopSink, &kernel.input()))?;
            e.insert(digest64(&output));
        }
    }
    let golden_digests: Vec<u64> = cfg
        .tasks
        .iter()
        .map(|t| golden[&(t.kind.name(), t.n)])
        .collect();
    let mut cells = Vec::new();
    for &site in &cfg.sites {
        for &kind in &cfg.kinds {
            for &rate_ppm in &cfg.rates_ppm {
                let cell_seed = mix64(
                    cfg.seed
                        ^ mix64(site.index() as u64)
                        ^ mix64(u64::from(rate_ppm))
                        ^ mix64(kind.name().len() as u64 ^ kind.apply(0)),
                );
                let plan = FaultPlan::new(cell_seed, site, kind, rate_ppm);
                let mut exec =
                    FaultyExecutor::new(plan, 0, cfg.lanes, standard_detectors(cell_seed));
                let mut accel = Accelerator::new(AcceleratorConfig {
                    vpu_count: cfg.vpus,
                    lanes: cfg.lanes,
                    ..AcceleratorConfig::default()
                })?;
                let mut cell = CellReport {
                    site,
                    kind,
                    rate_ppm,
                    injected: 0,
                    detected: 0,
                    recovered: 0,
                    silent: 0,
                    unrecoverable: 0,
                    retries: 0,
                    quarantined: 0,
                    detected_by: BTreeMap::new(),
                };
                match accel.run_tasks_with_recovery(&cfg.tasks, &mut exec, &cfg.policy) {
                    Ok(r) => {
                        cell.detected = r.detected_faults;
                        cell.recovered = r.recovered_tasks;
                        cell.retries = r.retries;
                        cell.quarantined = r.quarantined_slots.len() as u64;
                        cell.silent = r
                            .task_digests
                            .iter()
                            .zip(&golden_digests)
                            .filter(|(got, want)| got != want)
                            .count() as u64;
                    }
                    Err(AccelError::FaultUnrecoverable { .. }) => {
                        cell.unrecoverable = 1;
                    }
                    Err(other) => return Err(other),
                }
                cell.injected = exec.injected_words();
                cell.detected_by = exec.registry().family("fault.detected").clone();
                cells.push(cell);
            }
        }
    }
    Ok(CampaignReport {
        seed: cfg.seed,
        tasks_per_cell: cfg.tasks.len(),
        cells,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_covers_all_sites_without_silent_corruption() {
        let report = run_campaign(&CampaignConfig::smoke(0xFA_17)).unwrap();
        assert_eq!(report.cells.len(), 4 * 2 * 2, "site × kind × rate grid");
        assert_eq!(report.total_silent(), 0, "no silent corruption");
        let injected: u64 = report.cells.iter().map(|c| c.injected).sum();
        let detected: u64 = report.cells.iter().map(|c| c.detected).sum();
        assert!(injected > 0, "the campaign actually injected faults");
        assert!(detected > 0, "detectors fired");
        for site in FaultSite::ALL {
            let site_injected: u64 = report
                .cells
                .iter()
                .filter(|c| c.site == site)
                .map(|c| c.injected)
                .sum();
            assert!(site_injected > 0, "site {} never fired", site.name());
        }
    }

    #[test]
    fn campaign_json_is_byte_reproducible() {
        let a = run_campaign(&CampaignConfig::smoke(7)).unwrap().to_json();
        let b = run_campaign(&CampaignConfig::smoke(7)).unwrap().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"uvpu-fault/v1\""));
        assert!(a.ends_with("}\n"));
        let c = run_campaign(&CampaignConfig::smoke(8)).unwrap().to_json();
        assert_ne!(a, c, "the seed matters");
    }
}
