//! Fault plans: what to corrupt, where, when, and how often.

use crate::mix64;
use uvpu_core::trace::FaultSite;

/// The corruption applied to one 64-bit word.
///
/// Bit flips are *transient* (an SEU-style upset): the decision hash
/// includes the attempt number, so a retry of the same task re-rolls
/// the dice and converges. Stuck-at kinds are *persistent* (a broken
/// line on one VPU): their hash excludes the attempt, so every retry on
/// the faulty slot reproduces the same corruption and only a
/// quarantine-driven remap recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient single-bit flip of bit `bit % 64`.
    BitFlip {
        /// Bit position (taken mod 64).
        bit: u8,
    },
    /// Persistent line stuck at 0: bit `bit % 64` is forced low.
    StuckAtZero {
        /// Bit position (taken mod 64).
        bit: u8,
    },
    /// Persistent line stuck at 1: bit `bit % 64` is forced high.
    StuckAtOne {
        /// Bit position (taken mod 64).
        bit: u8,
    },
}

impl FaultKind {
    /// Stable snake_case name for reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::BitFlip { .. } => "bit_flip",
            Self::StuckAtZero { .. } => "stuck_at_zero",
            Self::StuckAtOne { .. } => "stuck_at_one",
        }
    }

    /// `true` when the fault survives re-execution on the same slot.
    #[must_use]
    pub const fn persistent(self) -> bool {
        !matches!(self, Self::BitFlip { .. })
    }

    /// Applies the corruption to one word, returning the new value.
    #[must_use]
    pub const fn apply(self, word: u64) -> u64 {
        match self {
            Self::BitFlip { bit } => word ^ (1u64 << (bit % 64)),
            Self::StuckAtZero { bit } => word & !(1u64 << (bit % 64)),
            Self::StuckAtOne { bit } => word | (1u64 << (bit % 64)),
        }
    }
}

/// A deterministic fault-injection plan.
///
/// Every corruption decision is a stateless hash of
/// `(seed, site, per-site event index within the attempt, lane)` — plus
/// the attempt number for transient kinds — compared against
/// `rate_ppm` parts per million. No RNG state is carried between
/// events, so the same plan over the same event stream corrupts the
/// same words regardless of host thread count or execution order of
/// unrelated work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// The datapath site this plan corrupts; events at other sites pass
    /// through untouched.
    pub site: FaultSite,
    /// What the corruption does to a selected word.
    pub kind: FaultKind,
    /// Half-open cycle window `[start, end)` in which the plan is armed
    /// (cycles are the VPU's own beat clock).
    pub cycle_window: (u64, u64),
    /// Per-word corruption probability in parts per million.
    pub rate_ppm: u32,
}

impl FaultPlan {
    /// An always-armed plan (window `[0, u64::MAX)`).
    #[must_use]
    pub const fn new(seed: u64, site: FaultSite, kind: FaultKind, rate_ppm: u32) -> Self {
        Self {
            seed,
            site,
            kind,
            cycle_window: (0, u64::MAX),
            rate_ppm,
        }
    }

    /// Decides whether the word at `lane` of per-site event `event_idx`
    /// (counted within one attempt) is corrupted on `attempt`.
    #[must_use]
    pub fn corrupts(&self, event_idx: u64, lane: usize, attempt: u32) -> bool {
        if self.rate_ppm == 0 {
            return false;
        }
        let mut h = mix64(self.seed);
        h = mix64(h ^ self.site.index() as u64);
        h = mix64(h ^ event_idx);
        h = mix64(h ^ lane as u64);
        if !self.kind.persistent() {
            h = mix64(h ^ u64::from(attempt));
        }
        h % 1_000_000 < u64::from(self.rate_ppm)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn kinds_apply_bitwise() {
        assert_eq!(FaultKind::BitFlip { bit: 0 }.apply(0b10), 0b11);
        assert_eq!(FaultKind::BitFlip { bit: 1 }.apply(0b10), 0b00);
        assert_eq!(FaultKind::StuckAtZero { bit: 1 }.apply(0b11), 0b01);
        assert_eq!(FaultKind::StuckAtOne { bit: 2 }.apply(0), 0b100);
        assert_eq!(
            FaultKind::BitFlip { bit: 64 }.apply(1),
            0,
            "bit index wraps mod 64"
        );
    }

    #[test]
    fn decisions_are_deterministic_and_rate_scaled() {
        let plan = |rate| {
            FaultPlan::new(
                42,
                FaultSite::LaneButterfly,
                FaultKind::BitFlip { bit: 3 },
                rate,
            )
        };
        let p = plan(100_000); // 10%
        for event in 0..100 {
            for lane in 0..8 {
                assert_eq!(p.corrupts(event, lane, 0), p.corrupts(event, lane, 0));
            }
        }
        let count = |p: &FaultPlan, attempt| {
            (0..1000u64)
                .flat_map(|e| (0..8).map(move |l| (e, l)))
                .filter(|&(e, l)| p.corrupts(e, l, attempt))
                .count()
        };
        assert_eq!(count(&plan(0), 0), 0, "zero rate never fires");
        let lo = count(&plan(10_000), 0);
        let hi = count(&plan(500_000), 0);
        assert!(lo > 0 && hi > lo, "rate ordering: {lo} < {hi}");
        assert!(hi > 3_000 && hi < 5_000, "50% of 8000 words, roughly: {hi}");
    }

    #[test]
    fn transient_rerolls_per_attempt_persistent_does_not() {
        let flip = FaultPlan::new(
            7,
            FaultSite::NetworkCg,
            FaultKind::BitFlip { bit: 0 },
            300_000,
        );
        let stuck = FaultPlan {
            kind: FaultKind::StuckAtOne { bit: 0 },
            ..flip
        };
        let pattern = |p: &FaultPlan, attempt| -> Vec<bool> {
            (0..200u64)
                .flat_map(|e| (0..4).map(move |l| (e, l)))
                .map(|(e, l)| p.corrupts(e, l, attempt))
                .collect()
        };
        assert_eq!(pattern(&stuck, 0), pattern(&stuck, 5), "persistent repeats");
        assert_ne!(pattern(&flip, 0), pattern(&flip, 1), "transient re-rolls");
    }
}
