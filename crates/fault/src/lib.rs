//! Deterministic fault injection, online error detection, and recovery
//! orchestration for the unified VPU stack.
//!
//! The paper's correctness story rests on one inter-lane network
//! faithfully realizing every NTT/automorphism permutation; silent
//! datapath corruption would invalidate that claim invisibly. This
//! crate supplies the missing robustness layer in three pieces:
//!
//! - [`plan`] / [`inject`]: a seeded, bit-reproducible fault injector
//!   riding the [`uvpu_core::trace::TraceSink`] fault hooks — bit flips
//!   and stuck-at lines at lane butterfly outputs, CG- and shift-stage
//!   network links, and register-file reads, gated by a
//!   [`FaultPlan`](plan::FaultPlan)'s site/kind/window/rate.
//! - [`detect`]: online algebraic guards (modulus-range check, inverse
//!   round-trip probe, shadow-vector linearity probe) behind the
//!   [`Detector`](detect::Detector) trait, with per-check counters in a
//!   [`uvpu_metrics::registry::MetricsRegistry`].
//! - [`exec`] / [`campaign`]: a [`TaskExecutor`](uvpu_accel::recovery::TaskExecutor)
//!   that runs accelerator tasks bit-exactly under a fault environment,
//!   plus site × rate campaign sweeps emitting a deterministic JSON
//!   coverage report (injected / detected / recovered / silent per
//!   cell), regression-gateable like the metrics snapshots.
//!
//! Everything is deterministic by construction: fault decisions are
//! stateless hashes of `(seed, site, event index, lane)`, kernels run
//! with the host thread count pinned to one (see
//! [`uvpu_par::with_threads`]), and reports render with sorted keys —
//! the same campaign yields byte-identical JSON at any `UVPU_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod campaign;
pub mod detect;
pub mod exec;
pub mod inject;
pub mod kernel;
pub mod plan;

/// SplitMix64 finalizer: the stateless mixing function behind every
/// fault decision and shadow-vector element. Small-integer inputs land
/// uniformly in `u64`, so `mix(x) % 1_000_000` is an unbiased-enough
/// per-word coin for ppm-scale fault rates.
#[must_use]
pub const fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a digest of a word vector — the task-output fingerprint used to
/// classify silent corruption against a fault-free golden run.
#[must_use]
pub fn digest64(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_stable_and_spreads() {
        assert_eq!(mix64(0), mix64(0), "pure function");
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low bits of consecutive inputs decorrelate (needed for the
        // per-word ppm coin).
        let a = mix64(100) % 1_000_000;
        let b = mix64(101) % 1_000_000;
        assert_ne!(a, b);
    }

    #[test]
    fn digest_is_order_and_value_sensitive() {
        assert_ne!(digest64(&[1, 2]), digest64(&[2, 1]));
        assert_ne!(digest64(&[1, 2]), digest64(&[1, 3]));
        assert_eq!(digest64(&[]), digest64(&[]));
    }
}
