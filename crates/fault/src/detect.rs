//! Online error detectors: cheap algebraic guards run after every task
//! attempt.
//!
//! All three built-in detectors are *exact* on a fault-free run — they
//! exploit algebraic identities (residue range, invertibility,
//! linearity) that the bit-exact kernels satisfy identically, so a
//! clean attempt can never be flagged. That property is load-bearing:
//! the retry loop in [`uvpu_accel::recovery`] converges because a
//! re-execution on a healthy slot is guaranteed to pass detection.
//!
//! Detector cycle costs are reported per attempt and charged into the
//! scheduler timeline as `check_cycles` (see ARCHITECTURE.md §11 for
//! how they land in the energy component bins).

use crate::kernel::Kernel;
use crate::mix64;
use uvpu_accel::AccelError;
use uvpu_core::trace::{NopSink, SharedSink};

use crate::inject::InjectorSink;

/// The shared fault environment of one attempt: detectors that re-run
/// the kernel (shadow vectors) do so through the same injector, so
/// their probes live in the same corrupted world as the attempt.
pub type FaultEnv = SharedSink<InjectorSink>;

/// What one detector concluded about one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorOutcome {
    /// `true` when the detector flags the attempt as faulty.
    pub flagged: bool,
    /// Pipeline cycles the check cost (charged to the attempt's slot).
    pub check_cycles: u64,
}

/// An online check over one completed task attempt.
pub trait Detector {
    /// Stable snake_case name for metrics families and reports.
    fn name(&self) -> &'static str;

    /// Checks the attempt that mapped `input` to `output` through
    /// `kernel`. `env` is the attempt's fault environment when it ran
    /// on the faulty slot (`None` on healthy slots); detectors that
    /// re-execute the kernel must run *through* it so persistent faults
    /// affect the probe the way they affected the attempt.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors from the VPU simulator.
    fn check(
        &mut self,
        kernel: &Kernel,
        env: Option<&FaultEnv>,
        input: &[u64],
        output: &[u64],
    ) -> Result<DetectorOutcome, AccelError>;
}

/// Flags any output word outside `[0, q)`.
///
/// Residues are invariants of every kernel, so this is free of false
/// positives and costs one comparison pass. It catches high-bit
/// corruption at the register-file read site (the only site whose
/// words leave the datapath un-reduced); corruption captured back into
/// range by a modular stage needs the algebraic probes below.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeGuard;

impl Detector for RangeGuard {
    fn name(&self) -> &'static str {
        "range_guard"
    }

    fn check(
        &mut self,
        kernel: &Kernel,
        _env: Option<&FaultEnv>,
        _input: &[u64],
        output: &[u64],
    ) -> Result<DetectorOutcome, AccelError> {
        let q = kernel.modulus().value();
        Ok(DetectorOutcome {
            flagged: output.iter().any(|&x| x >= q),
            // One compare pass over the vector, one column per beat.
            check_cycles: output.len().div_ceil(64).max(1) as u64,
        })
    }
}

/// Re-derives the input from the output through the kernel's exact
/// inverse (inverse NTT on a clean VPU, inverse index map, inverse
/// constant multiply) and compares.
///
/// Because every kernel is a bijection on `Z_q^n`, *any* corruption of
/// the output maps back to a different input — this probe alone makes
/// silent output corruption impossible on covered attempts. It is also
/// the most expensive check (a full inverse execution for NTT tasks).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundTripProbe;

impl Detector for RoundTripProbe {
    fn name(&self) -> &'static str {
        "round_trip"
    }

    fn check(
        &mut self,
        kernel: &Kernel,
        _env: Option<&FaultEnv>,
        input: &[u64],
        output: &[u64],
    ) -> Result<DetectorOutcome, AccelError> {
        let q = kernel.modulus();
        // An out-of-range word can't be a kernel output at all; bail
        // before the inverse, which expects valid residues.
        if output.iter().any(|&x| x >= q.value()) {
            return Ok(DetectorOutcome {
                flagged: true,
                check_cycles: output.len().div_ceil(64).max(1) as u64,
            });
        }
        let (back, cycles) = kernel.invert(output)?;
        Ok(DetectorOutcome {
            flagged: back != input,
            check_cycles: cycles,
        })
    }
}

/// Negacyclic linearity check: runs a deterministic shadow vector `b`
/// and the sum `a + b` through the *same* fault environment and flags
/// when `K(a) + K(b) ≠ K(a + b)`.
///
/// All kernels are linear over `Z_q`, so the identity holds exactly on
/// clean hardware. A fault hitting any of the three executions breaks
/// it with overwhelming probability — including faults in the shadow
/// runs themselves, which is correct behavior: the check monitors the
/// *environment*, and a retry re-rolls transient faults while
/// quarantine handles persistent ones.
#[derive(Debug, Clone, Copy)]
pub struct LinearityProbe {
    /// Seed for the shadow vector (vary per campaign, not per attempt,
    /// to keep attempts bit-comparable).
    pub seed: u64,
}

impl LinearityProbe {
    /// A probe whose shadow vector derives from `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    fn shadow(&self, kernel: &Kernel) -> Vec<u64> {
        let q = kernel.modulus();
        (0..kernel.n() as u64)
            .map(|i| q.reduce_u64(mix64(self.seed ^ i)))
            .collect()
    }
}

impl Detector for LinearityProbe {
    fn name(&self) -> &'static str {
        "linearity"
    }

    fn check(
        &mut self,
        kernel: &Kernel,
        env: Option<&FaultEnv>,
        input: &[u64],
        output: &[u64],
    ) -> Result<DetectorOutcome, AccelError> {
        let q = kernel.modulus();
        let b = self.shadow(kernel);
        let ab: Vec<u64> = input
            .iter()
            .zip(&b)
            .map(|(&x, &y)| q.add(q.reduce_u64(x), y))
            .collect();
        let ((fb, sb), (fab, sab)) = match env {
            Some(shared) => (
                kernel.run(shared.clone(), &b)?,
                kernel.run(shared.clone(), &ab)?,
            ),
            None => (kernel.run(NopSink, &b)?, kernel.run(NopSink, &ab)?),
        };
        let flagged = output
            .iter()
            .zip(fb.iter().zip(&fab))
            .any(|(&fa, (&fb, &fab))| {
                q.add(q.reduce_u64(fa), q.reduce_u64(fb)) != q.reduce_u64(fab)
            });
        Ok(DetectorOutcome {
            flagged,
            check_cycles: sb.total() + sab.total(),
        })
    }
}

/// The standard detector battery: range guard, round-trip probe, and
/// linearity probe, in increasing cost order.
#[must_use]
pub fn standard_detectors(seed: u64) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(RangeGuard),
        Box::new(RoundTripProbe),
        Box::new(LinearityProbe::new(seed)),
    ]
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::plan::{FaultKind, FaultPlan};
    use uvpu_accel::workload::{Task, TaskKind};
    use uvpu_core::trace::FaultSite;

    fn kernel(kind: TaskKind) -> Kernel {
        Kernel::for_task(
            &Task {
                kind,
                n: 256,
                noc_bytes: 0,
            },
            16,
        )
        .unwrap()
    }

    #[test]
    fn clean_runs_never_flag() {
        for kind in [
            TaskKind::Ntt,
            TaskKind::Automorphism,
            TaskKind::Elementwise { passes: 2 },
        ] {
            let k = kernel(kind);
            let input = k.input();
            let (output, _) = k.run(NopSink, &input).unwrap();
            for d in &mut standard_detectors(9) {
                let o = d.check(&k, None, &input, &output).unwrap();
                assert!(!o.flagged, "{} false-positived on {kind:?}", d.name());
                assert!(o.check_cycles > 0, "{} is not free", d.name());
            }
        }
    }

    #[test]
    fn range_guard_catches_out_of_range_words() {
        let k = kernel(TaskKind::Ntt);
        let input = k.input();
        let (mut output, _) = k.run(NopSink, &input).unwrap();
        output[17] |= 1 << 62; // high-bit corruption at the store site
        let o = RangeGuard.check(&k, None, &input, &output).unwrap();
        assert!(o.flagged);
    }

    #[test]
    fn round_trip_catches_any_in_range_corruption() {
        for kind in [
            TaskKind::Ntt,
            TaskKind::Automorphism,
            TaskKind::Elementwise { passes: 2 },
        ] {
            let k = kernel(kind);
            let input = k.input();
            let (mut output, _) = k.run(NopSink, &input).unwrap();
            // Corrupt one word but stay a valid residue: invisible to
            // the range guard, fatal to the round trip.
            output[5] = k.modulus().add(output[5], 1);
            assert!(
                !RangeGuard.check(&k, None, &input, &output).unwrap().flagged,
                "in-range corruption evades the range guard"
            );
            let o = RoundTripProbe.check(&k, None, &input, &output).unwrap();
            assert!(o.flagged, "{kind:?}");
        }
    }

    #[test]
    fn linearity_probe_sees_environment_faults() {
        use uvpu_core::trace::SharedSink;
        // A persistent stuck-at fault corrupts the butterfly site; the
        // attempt and the shadow runs all pass through it, and the
        // linearity identity shatters.
        let k = kernel(TaskKind::Ntt);
        let plan = FaultPlan::new(
            77,
            FaultSite::LaneButterfly,
            FaultKind::StuckAtOne { bit: 13 },
            60_000,
        );
        let env = SharedSink::new(InjectorSink::new(plan, 16));
        let input = k.input();
        // Pin to one host thread like the executor does: the parallel
        // mapping paths charge beats analytically and would bypass the
        // injector entirely.
        uvpu_par::with_threads(1, || {
            let (output, _) = k.run(env.clone(), &input).unwrap();
            assert!(env.with(|s| s.injected_total()) > 0, "faults landed");
            let o = LinearityProbe::new(9)
                .check(&k, Some(&env), &input, &output)
                .unwrap();
            assert!(o.flagged);
        });
    }
}
