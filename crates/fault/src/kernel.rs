//! Task kernels as re-runnable, invertible objects.
//!
//! The recovery executor and the online detectors both need to run a
//! scheduler [`Task`]'s kernel on demand — on a clean VPU for golden
//! references and inverse probes, or under a shared fault environment
//! for the attempt itself and the shadow-vector checks. [`Kernel`]
//! packages the three task kinds behind one interface, mirroring the
//! recipes of [`uvpu_accel::workload::measure_task`] so a fault
//! campaign prices exactly the kernels the machine model schedules.

use uvpu_accel::workload::{Task, TaskKind};
use uvpu_accel::AccelError;
use uvpu_core::auto_map::AutomorphismMapping;
use uvpu_core::ntt_map::NttPlan;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace::TraceSink;
use uvpu_core::vpu::Vpu;
use uvpu_core::CoreError;
use uvpu_math::modular::Modulus;
use uvpu_math::primes::ntt_prime;

/// The automorphism element every kernel instance uses (matches
/// `measure_task`).
const AUTO_G: u64 = 5;

/// A task kernel bound to a lane count and modulus, executable any
/// number of times under any trace sink.
///
/// All three kinds are *linear* maps over `Z_q^n` and *invertible*
/// (inverse NTT, inverse automorphism index map, inverse constant
/// multiply), which is what makes the linearity and round-trip
/// detectors exact: on a fault-free run they can never fire.
#[derive(Debug, Clone)]
pub struct Kernel {
    kind: TaskKind,
    n: usize,
    lanes: usize,
    q: Modulus,
}

impl Kernel {
    /// Builds the kernel for `task` on `lanes` lanes, choosing the same
    /// NTT-friendly ~50-bit modulus as the machine model's measurement
    /// path.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors from the VPU simulator (e.g. no suitable
    /// prime, or `n` incompatible with the lane count).
    pub fn for_task(task: &Task, lanes: usize) -> Result<Self, AccelError> {
        let n = task.n;
        let q = Modulus::new(ntt_prime(50, n.max(lanes * 2)).map_err(CoreError::Math)?)
            .map_err(CoreError::Math)?;
        Ok(Self {
            kind: task.kind,
            n,
            lanes,
            q,
        })
    }

    /// The kernel's modulus.
    #[must_use]
    pub const fn modulus(&self) -> Modulus {
        self.q
    }

    /// The kernel's ring degree.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The canonical input vector for this kernel's tasks: the ramp
    /// `0, 1, …, n−1` reduced mod `q` — deterministic, shared by the
    /// golden run and every attempt.
    #[must_use]
    pub fn input(&self) -> Vec<u64> {
        (0..self.n as u64).map(|x| self.q.reduce_u64(x)).collect()
    }

    /// The per-lane constant vector of the element-wise kernel (small
    /// odd ramp; every entry is a unit mod the ~50-bit prime `q`).
    fn ewise_consts(&self) -> Vec<u64> {
        (0..self.lanes as u64)
            .map(|i| self.q.reduce_u64(3 + 2 * i))
            .collect()
    }

    /// Runs the kernel forward over `input` under `sink`, returning the
    /// output vector and the pipeline cycles of just this run.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors from the VPU simulator.
    pub fn run<S: TraceSink>(
        &self,
        sink: S,
        input: &[u64],
    ) -> Result<(Vec<u64>, CycleStats), AccelError> {
        let mut vpu = Vpu::with_sink(self.lanes, self.q, 8, sink)?;
        match self.kind {
            TaskKind::Ntt => {
                let plan = NttPlan::cached(self.q, self.n, self.lanes)?;
                let run = plan.execute_forward_negacyclic(&mut vpu, input)?;
                Ok((run.output, run.stats))
            }
            TaskKind::Automorphism => {
                let plan = AutomorphismMapping::cached(self.n, self.lanes, AUTO_G, 0)?;
                let run = plan.execute(&mut vpu, input)?;
                Ok((run.output, run.stats))
            }
            TaskKind::Elementwise { passes } => {
                let consts = self.ewise_consts();
                let cols = self.n.div_ceil(self.lanes);
                let mut output = Vec::with_capacity(cols * self.lanes);
                for c in 0..cols {
                    let start = c * self.lanes;
                    let mut column = vec![0u64; self.lanes];
                    for (i, slot) in column.iter_mut().enumerate() {
                        if let Some(&x) = input.get(start + i) {
                            *slot = x;
                        }
                    }
                    vpu.load(0, &column)?;
                    for _ in 0..passes {
                        vpu.ewise_mul_const(0, 0, &consts)?;
                    }
                    output.extend(vpu.store(0)?);
                }
                output.truncate(self.n);
                Ok((output, *vpu.stats()))
            }
        }
    }

    /// Recovers the kernel input from `output` via the exact inverse
    /// operation, returning the candidate input and the cycles the
    /// probe costs. The inverse NTT runs on a clean VPU; the
    /// automorphism and constant-multiply inverses are host-side
    /// algebra priced at one pass over the vector.
    ///
    /// # Errors
    ///
    /// Kernel-mapping errors from the VPU simulator, or an `output`
    /// length mismatch.
    pub fn invert(&self, output: &[u64]) -> Result<(Vec<u64>, u64), AccelError> {
        if output.len() != self.n {
            return Err(AccelError::Core(CoreError::Math(
                uvpu_math::MathError::LengthMismatch {
                    left: self.n,
                    right: output.len(),
                },
            )));
        }
        let cols = self.n.div_ceil(self.lanes) as u64;
        match self.kind {
            TaskKind::Ntt => {
                let plan = NttPlan::cached(self.q, self.n, self.lanes)?;
                let mut vpu = Vpu::new(self.lanes, self.q, 8)?;
                let run = plan.execute_inverse_negacyclic(&mut vpu, output)?;
                Ok((run.output, run.stats.total()))
            }
            TaskKind::Automorphism => {
                // Forward: output[(i·g) mod n] = input[i], so reading
                // the forward index map back out inverts it exactly.
                let mut input = vec![0u64; self.n];
                for (i, slot) in input.iter_mut().enumerate() {
                    *slot = output[(i as u64 * AUTO_G) as usize % self.n];
                }
                Ok((input, cols))
            }
            TaskKind::Elementwise { passes } => {
                let consts = self.ewise_consts();
                let inv: Vec<u64> = consts
                    .iter()
                    .map(|&c| self.q.inv(c).map_err(CoreError::Math))
                    .collect::<Result<_, _>>()?;
                let mut input = output.to_vec();
                for (i, x) in input.iter_mut().enumerate() {
                    let c = inv[i % self.lanes];
                    let mut v = self.q.reduce_u64(*x);
                    for _ in 0..passes {
                        v = self.q.mul(v, c);
                    }
                    *x = v;
                }
                Ok((input, cols * passes as u64))
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use uvpu_core::trace::NopSink;

    fn task(kind: TaskKind, n: usize) -> Task {
        Task {
            kind,
            n,
            noc_bytes: 0,
        }
    }

    #[test]
    fn every_kind_round_trips_through_its_inverse() {
        for kind in [
            TaskKind::Ntt,
            TaskKind::Automorphism,
            TaskKind::Elementwise { passes: 3 },
        ] {
            let k = Kernel::for_task(&task(kind, 256), 16).unwrap();
            let input = k.input();
            let (output, stats) = k.run(NopSink, &input).unwrap();
            let (back, probe_cycles) = k.invert(&output).unwrap();
            assert_eq!(back, input, "{kind:?} inverse recovers the input");
            assert!(stats.total() > 0);
            assert!(probe_cycles > 0);
        }
    }

    #[test]
    fn kernels_are_linear_maps() {
        for kind in [
            TaskKind::Ntt,
            TaskKind::Automorphism,
            TaskKind::Elementwise { passes: 2 },
        ] {
            let k = Kernel::for_task(&task(kind, 256), 16).unwrap();
            let q = k.modulus();
            let a = k.input();
            let b: Vec<u64> = (0..256u64).map(|i| q.reduce_u64(i * 31 + 7)).collect();
            let ab: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
            let (fa, _) = k.run(NopSink, &a).unwrap();
            let (fb, _) = k.run(NopSink, &b).unwrap();
            let (fab, _) = k.run(NopSink, &ab).unwrap();
            let sum: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.add(x, y)).collect();
            assert_eq!(sum, fab, "{kind:?} is additive");
        }
    }

    #[test]
    fn run_matches_measure_task_cycle_costs() {
        // The campaign's recovery timeline should price the same cycles
        // the stock scheduler does.
        for kind in [TaskKind::Ntt, TaskKind::Automorphism] {
            let t = task(kind, 256);
            let k = Kernel::for_task(&t, 16).unwrap();
            let (_, stats) = k.run(NopSink, &k.input()).unwrap();
            let measured = uvpu_accel::workload::measure_task(&t, 16).unwrap();
            assert_eq!(stats, measured, "{kind:?}");
        }
    }
}
