//! The injector sink: a [`TraceSink`] that corrupts in-flight data at
//! the VPU's fault hooks according to a [`FaultPlan`].

use crate::plan::FaultPlan;
use uvpu_core::trace::{FaultSite, TraceSink};

/// One applied corruption, for post-mortem inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Site the corruption landed on.
    pub site: FaultSite,
    /// VPU beat-clock cycle of the event.
    pub cycle: u64,
    /// Lane whose word was corrupted.
    pub lane: usize,
    /// Word value before corruption.
    pub before: u64,
    /// Word value after corruption.
    pub after: u64,
}

/// A fault-injecting trace sink.
///
/// Attach it to a VPU (directly or via
/// [`SharedSink`](uvpu_core::trace::SharedSink) when detectors need to
/// share the environment across kernel runs) and every fault hook at
/// the plan's site rolls the plan's deterministic per-word coin.
/// Only corruptions that actually *change* a word are counted as
/// injected — a stuck-at-zero landing on a zero bit is electrically
/// present but architecturally masked.
///
/// Call [`begin_attempt`](Self::begin_attempt) before each re-execution
/// of a task: it restarts the per-site event numbering so persistent
/// faults reproduce at the same logical positions, and stamps the
/// attempt number into transient decisions so they re-roll.
#[derive(Debug, Clone)]
pub struct InjectorSink {
    plan: FaultPlan,
    attempt: u32,
    event_counts: [u64; 4],
    injected_attempt: u64,
    injected_total: u64,
    records: Vec<FaultRecord>,
    record_cap: usize,
}

impl InjectorSink {
    /// An injector for `plan`, keeping at most `record_cap` detailed
    /// fault records (counters are always exact).
    #[must_use]
    pub const fn new(plan: FaultPlan, record_cap: usize) -> Self {
        Self {
            plan,
            attempt: 0,
            event_counts: [0; 4],
            injected_attempt: 0,
            injected_total: 0,
            records: Vec::new(),
            record_cap,
        }
    }

    /// Restarts per-site event numbering for re-execution `attempt` of
    /// the same task (see the type docs).
    pub fn begin_attempt(&mut self, attempt: u32) {
        self.attempt = attempt;
        self.event_counts = [0; 4];
        self.injected_attempt = 0;
    }

    /// The plan driving this injector.
    #[must_use]
    pub const fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Words corrupted (changed) during the current attempt.
    #[must_use]
    pub const fn injected_attempt(&self) -> u64 {
        self.injected_attempt
    }

    /// Words corrupted (changed) across all attempts.
    #[must_use]
    pub const fn injected_total(&self) -> u64 {
        self.injected_total
    }

    /// Detailed records of the first corruptions (up to the cap).
    #[must_use]
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }
}

impl TraceSink for InjectorSink {
    fn fault_hooks_enabled(&self) -> bool {
        true
    }

    fn fault_data(&mut self, _track: u32, cycle: u64, site: FaultSite, data: &mut [u64]) {
        let event_idx = self.event_counts[site.index()];
        self.event_counts[site.index()] += 1;
        if site != self.plan.site {
            return;
        }
        let (w0, w1) = self.plan.cycle_window;
        if cycle < w0 || cycle >= w1 {
            return;
        }
        for (lane, word) in data.iter_mut().enumerate() {
            if !self.plan.corrupts(event_idx, lane, self.attempt) {
                continue;
            }
            let corrupted = self.plan.kind.apply(*word);
            if corrupted == *word {
                continue; // architecturally masked
            }
            if self.records.len() < self.record_cap {
                self.records.push(FaultRecord {
                    site,
                    cycle,
                    lane,
                    before: *word,
                    after: corrupted,
                });
            }
            *word = corrupted;
            self.injected_attempt += 1;
            self.injected_total += 1;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;
    use uvpu_core::trace::SharedSink;
    use uvpu_core::vpu::Vpu;
    use uvpu_math::modular::Modulus;

    fn plan(site: FaultSite, rate_ppm: u32) -> FaultPlan {
        FaultPlan::new(1234, site, FaultKind::BitFlip { bit: 2 }, rate_ppm)
    }

    #[test]
    fn injector_corrupts_store_reads_deterministically() {
        let run = || {
            let q = Modulus::new(97).unwrap();
            let sink = InjectorSink::new(plan(FaultSite::RegFileRead, 400_000), 64);
            let mut vpu = Vpu::with_sink(8, q, 8, sink).unwrap();
            vpu.load(0, &[10, 20, 30, 40, 50, 60, 70, 80]).unwrap();
            let out = vpu.store(0).unwrap();
            let sink = vpu.into_sink();
            (out, sink.injected_total(), sink.records().to_vec())
        };
        let (out_a, injected_a, rec_a) = run();
        let (out_b, injected_b, _) = run();
        assert_eq!(out_a, out_b, "bit-reproducible corruption");
        assert_eq!(injected_a, injected_b);
        assert!(injected_a > 0, "40% per-word rate over 8 lanes fires");
        assert_ne!(
            out_a,
            vec![10, 20, 30, 40, 50, 60, 70, 80],
            "corruption visible at the store interface"
        );
        for r in &rec_a {
            assert_eq!(r.after, r.before ^ 4, "single-bit flip of bit 2");
        }
    }

    #[test]
    fn off_site_events_pass_through() {
        let q = Modulus::new(97).unwrap();
        let sink = InjectorSink::new(plan(FaultSite::NetworkShift, 1_000_000), 8);
        let mut vpu = Vpu::with_sink(8, q, 8, sink).unwrap();
        vpu.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let out = vpu.store(0).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(vpu.into_sink().injected_total(), 0);
    }

    #[test]
    fn network_sites_stay_in_range_after_injection() {
        // Write-back sites re-reduce mod q, so even a 100% flip rate
        // leaves every stored word a valid residue.
        let q = Modulus::new(97).unwrap();
        let sink = SharedSink::new(InjectorSink::new(
            plan(FaultSite::NetworkShift, 1_000_000),
            8,
        ));
        let mut vpu = Vpu::with_sink(8, q, 8, sink.clone()).unwrap();
        vpu.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        vpu.rotate(1, 0, 3).unwrap();
        let out = vpu.store(1).unwrap();
        assert!(sink.with(|s| s.injected_total()) > 0);
        assert!(out.iter().all(|&x| x < 97), "{out:?}");
        assert_ne!(out, vec![6, 7, 8, 1, 2, 3, 4, 5], "rotation corrupted");
    }

    #[test]
    fn cycle_window_gates_injection() {
        let q = Modulus::new(97).unwrap();
        let mut p = plan(FaultSite::NetworkShift, 1_000_000);
        p.cycle_window = (100, 200); // the rotate below runs at cycle 0
        let sink = InjectorSink::new(p, 8);
        let mut vpu = Vpu::with_sink(8, q, 8, sink).unwrap();
        vpu.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        vpu.rotate(1, 0, 3).unwrap();
        assert_eq!(vpu.store(1).unwrap(), vec![6, 7, 8, 1, 2, 3, 4, 5]);
        assert_eq!(vpu.into_sink().injected_total(), 0);
    }
}
