//! The fault-aware task executor plugged into the recovery scheduler.

use crate::detect::{Detector, FaultEnv};
use crate::digest64;
use crate::inject::InjectorSink;
use crate::kernel::Kernel;
use crate::plan::FaultPlan;
use uvpu_accel::recovery::{TaskAttempt, TaskExecutor};
use uvpu_accel::workload::Task;
use uvpu_accel::AccelError;
use uvpu_core::stats::CycleStats;
use uvpu_core::trace::{BeatKind, EwiseOp, NetKind, SharedSink};
use uvpu_metrics::energy::{Component, EnergyModel};
use uvpu_metrics::registry::MetricsRegistry;

/// Executes task attempts bit-exactly, injecting faults on one
/// designated *faulty slot* and screening every attempt through the
/// online detectors.
///
/// The single-faulty-slot model mirrors what quarantine can actually
/// fix: one degraded VPU whose work the scheduler remaps away. Attempts
/// landing on healthy slots execute cleanly (and, because the
/// detectors are exact, always pass), so a retry that migrates off the
/// faulty slot converges bit-exactly.
///
/// Every kernel runs under [`uvpu_par::with_threads`]`(1, …)`: the
/// sequential paths of the operation mappings keep all functional work
/// on the attempt's own (possibly fault-injected) VPU, which makes the
/// executor — and any campaign built on it — bit-reproducible across
/// `UVPU_THREADS`.
pub struct FaultyExecutor {
    plan: FaultPlan,
    faulty_slot: usize,
    lanes: usize,
    detectors: Vec<Box<dyn Detector>>,
    registry: MetricsRegistry,
    energy: EnergyModel,
    injected_words: u64,
}

impl FaultyExecutor {
    /// An executor injecting `plan` on `faulty_slot`, running tasks on
    /// `lanes`-lane VPUs and screening with `detectors`.
    #[must_use]
    pub fn new(
        plan: FaultPlan,
        faulty_slot: usize,
        lanes: usize,
        detectors: Vec<Box<dyn Detector>>,
    ) -> Self {
        Self {
            plan,
            faulty_slot,
            lanes,
            detectors,
            registry: MetricsRegistry::new(),
            energy: EnergyModel::asap7(lanes),
            injected_words: 0,
        }
    }

    /// Words actually corrupted across all attempts so far.
    #[must_use]
    pub const fn injected_words(&self) -> u64 {
        self.injected_words
    }

    /// The per-check metrics: `fault.checks` / `fault.detected`
    /// families keyed by detector name, `fault.injected` keyed by site,
    /// plus re-execution cycle/energy counters.
    #[must_use]
    pub const fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Charges one attempt's re-execution work into the pJ component
    /// bins (PR-3 accounting: retries are pure overhead energy).
    fn charge_reexec_energy(&mut self, stats: &CycleStats) {
        let mut counts = [0u64; 7];
        EnergyModel::charge_beats(BeatKind::Butterfly, stats.butterfly, &mut counts);
        EnergyModel::charge_beats(
            BeatKind::Elementwise(EwiseOp::Mul),
            stats.elementwise,
            &mut counts,
        );
        EnergyModel::charge_beats(
            BeatKind::NetworkMove(NetKind::Shift),
            stats.network_move,
            &mut counts,
        );
        for c in Component::ALL {
            let pj = self.energy.component_pj(c, counts[c.index()]);
            if pj > 0.0 {
                // Integer picojoules keep the registry deterministic.
                self.registry
                    .inc_family("fault.reexec_pj", c.name(), pj.round() as u64);
            }
        }
    }
}

impl TaskExecutor for FaultyExecutor {
    fn execute(
        &mut self,
        task: &Task,
        slot: usize,
        attempt: u32,
    ) -> Result<TaskAttempt, AccelError> {
        let lanes = self.lanes;
        let kernel = Kernel::for_task(task, lanes)?;
        let input = kernel.input();
        // Pin to one host thread: the sequential kernel paths keep all
        // functional work on this attempt's VPU (and its injector).
        uvpu_par::with_threads(1, || {
            let env: Option<FaultEnv> = if slot == self.faulty_slot {
                let mut injector = InjectorSink::new(self.plan, 32);
                injector.begin_attempt(attempt);
                Some(SharedSink::new(injector))
            } else {
                None
            };
            let (output, stats) = match &env {
                Some(shared) => kernel.run(shared.clone(), &input)?,
                None => kernel.run(uvpu_core::trace::NopSink, &input)?,
            };
            let mut detected = false;
            let mut check_cycles = 0u64;
            for d in &mut self.detectors {
                let outcome = d.check(&kernel, env.as_ref(), &input, &output)?;
                self.registry.inc_family("fault.checks", d.name(), 1);
                check_cycles += outcome.check_cycles;
                if outcome.flagged {
                    self.registry.inc_family("fault.detected", d.name(), 1);
                    detected = true;
                }
            }
            if let Some(shared) = &env {
                let injected = shared.with(|s| s.injected_total());
                if injected > 0 {
                    self.injected_words += injected;
                    self.registry
                        .inc_family("fault.injected", self.plan.site.name(), injected);
                }
            }
            self.registry.inc("fault.attempts", 1);
            self.registry.inc("fault.check.cycles", check_cycles);
            if attempt > 0 {
                self.registry.inc("fault.reexec.cycles", stats.total());
                self.charge_reexec_energy(&stats);
            }
            Ok(TaskAttempt {
                stats,
                digest: digest64(&output),
                check_cycles,
                detected,
            })
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::detect::standard_detectors;
    use crate::plan::FaultKind;
    use uvpu_accel::config::AcceleratorConfig;
    use uvpu_accel::machine::Accelerator;
    use uvpu_accel::recovery::RetryPolicy;
    use uvpu_accel::workload::TaskKind;
    use uvpu_core::trace::FaultSite;

    fn accel(vpus: usize, lanes: usize) -> Accelerator {
        Accelerator::new(AcceleratorConfig {
            vpu_count: vpus,
            lanes,
            ..AcceleratorConfig::default()
        })
        .unwrap()
    }

    fn ntt_tasks(count: usize) -> Vec<Task> {
        vec![
            Task {
                kind: TaskKind::Ntt,
                n: 256,
                noc_bytes: 2 * 256 * 8,
            };
            count
        ]
    }

    #[test]
    fn zero_rate_behaves_like_clean_execution() {
        let plan = FaultPlan::new(
            1,
            FaultSite::LaneButterfly,
            FaultKind::BitFlip { bit: 1 },
            0,
        );
        let mut exec = FaultyExecutor::new(plan, 0, 16, standard_detectors(5));
        let r = accel(2, 16)
            .run_tasks_with_recovery(&ntt_tasks(3), &mut exec, &RetryPolicy::default())
            .unwrap();
        assert_eq!(r.detected_faults, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(exec.injected_words(), 0);
        assert_eq!(exec.registry().counter("fault.attempts"), 3);
        assert_eq!(exec.registry().family("fault.checks")["range_guard"], 3);
    }

    #[test]
    fn transient_faults_are_detected_and_retried_to_convergence() {
        // An NTT attempt exposes ~2048 butterfly words, and the
        // linearity probe's two shadow runs triple that — so the rate
        // must stay low enough that a retry has a real chance of
        // running clean. ~150 ppm ≈ one expected corruption per
        // attempt.
        let plan = FaultPlan::new(
            42,
            FaultSite::LaneButterfly,
            FaultKind::BitFlip { bit: 7 },
            150,
        );
        let mut exec = FaultyExecutor::new(plan, 0, 16, standard_detectors(5));
        let tasks = ntt_tasks(4);
        let policy = RetryPolicy {
            max_retries: 6,
            backoff_cycles: 16,
            quarantine_threshold: 100, // effectively off: isolate retry behavior
        };
        let r = accel(1, 16)
            .run_tasks_with_recovery(&tasks, &mut exec, &policy)
            .unwrap();
        assert!(exec.injected_words() > 0, "rate high enough to fire");
        assert!(r.detected_faults > 0, "injections were caught");
        assert!(r.recovered_tasks > 0);
        // Every accepted digest equals the fault-free golden digest.
        let mut clean = FaultyExecutor::new(
            FaultPlan {
                rate_ppm: 0,
                ..plan
            },
            0,
            16,
            standard_detectors(5),
        );
        let golden = accel(1, 16)
            .run_tasks_with_recovery(&tasks, &mut clean, &policy)
            .unwrap();
        assert_eq!(r.task_digests, golden.task_digests, "bit-exact convergence");
        assert!(exec.registry().counter("fault.reexec.cycles") > 0);
        assert!(!exec.registry().family("fault.reexec_pj").is_empty());
    }

    #[test]
    fn persistent_faults_drive_quarantine_remap() {
        let plan = FaultPlan::new(
            7,
            FaultSite::NetworkCg,
            FaultKind::StuckAtOne { bit: 11 },
            20_000,
        );
        let mut exec = FaultyExecutor::new(plan, 0, 16, standard_detectors(5));
        let policy = RetryPolicy {
            max_retries: 4,
            backoff_cycles: 16,
            quarantine_threshold: 2,
        };
        let r = accel(2, 16)
            .run_tasks_with_recovery(&ntt_tasks(4), &mut exec, &policy)
            .unwrap();
        assert_eq!(r.quarantined_slots, vec![0], "the faulty slot got benched");
        assert!(r.recovered_tasks > 0);
        // After the remap everything ran clean on slot 1.
        let clean_digest = r.task_digests[r.task_digests.len() - 1];
        assert!(r.task_digests.iter().all(|&d| d == clean_digest));
    }

    #[test]
    fn attempts_are_bit_reproducible_across_thread_settings() {
        let plan = FaultPlan::new(
            99,
            FaultSite::RegFileRead,
            FaultKind::BitFlip { bit: 55 },
            3_000,
        );
        // `with_threads` is non-reentrant (the executor pins inside),
        // so steer the ambient thread count via the plain override.
        let run = |threads: usize| {
            uvpu_par::set_thread_override(Some(threads));
            let mut exec = FaultyExecutor::new(plan, 0, 16, standard_detectors(5));
            let r = accel(2, 16)
                .run_tasks_with_recovery(&ntt_tasks(3), &mut exec, &RetryPolicy::default())
                .unwrap();
            uvpu_par::set_thread_override(None);
            (r, exec.injected_words())
        };
        assert_eq!(run(1), run(4), "UVPU_THREADS invariance");
    }
}
