//! `uvpu-par` — a small, dependency-free data-parallel execution layer.
//!
//! The build environment has no network access, so this crate hand-rolls
//! the two primitives the workspace needs instead of pulling in rayon:
//!
//! 1. **Deterministic parallel maps** over an index range
//!    ([`par_map_indexed`], [`par_map_indexed_with`], [`par_map_vec`])
//!    built on [`std::thread::scope`]. Workers pull indices from a shared
//!    atomic counter (dynamic load balancing), but results are collected
//!    *by index*, so the output vector is bit-exact regardless of thread
//!    count or scheduling. RNS residues, VPU lane columns, and
//!    accelerator task measurements are all embarrassingly independent —
//!    the only thing parallelism may change is wall-clock time.
//!
//! 2. **A process-wide plan cache** ([`Memo`]): a sharded
//!    `Mutex<HashMap<K, Arc<V>>>` suitable for `static` use, so NTT
//!    tables, cyclic-NTT twiddles, and automorphism control-bit
//!    decompositions are built once per `(q, n, g)` and shared by every
//!    context, bench, and worker thread.
//!
//! # Thread-count resolution
//!
//! The effective worker count is resolved, in priority order, from
//! 1. the runtime override ([`set_thread_override`] / [`with_threads`]),
//! 2. the `UVPU_THREADS` environment variable (read once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 short-circuits every parallel primitive into a
//! plain sequential loop on the calling thread — no threads are spawned,
//! which keeps single-threaded runs (and their thread-local trace sinks)
//! exactly as they were.
//!
//! # Worker hooks
//!
//! Layers above (notably `uvpu_core::trace`) can register a pair of
//! plain-`fn` hooks via [`install_worker_hooks`]; the start hook runs in
//! every pool worker before it takes its first index and the exit hook
//! runs when the worker finishes (including on panic). This is how the
//! process-global trace sink is propagated into workers without this
//! crate depending on the trace layer.

#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a mutex, ignoring poisoning: every structure in this crate is
/// valid after any partial mutation (worst case a cache misses).
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------

/// Runtime override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `UVPU_THREADS`, parsed once; 0 means "unset or unparsable".
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("UVPU_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The number of worker threads parallel maps will use.
///
/// Resolution order: runtime override ([`set_thread_override`] /
/// [`with_threads`]) → `UVPU_THREADS` → available parallelism. Always
/// at least 1.
#[must_use]
pub fn max_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets (or with `None` clears) the process-wide thread-count override.
///
/// Takes precedence over `UVPU_THREADS`. Prefer [`with_threads`] in
/// tests — it restores the previous value and serializes against other
/// scoped overrides.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Runs `f` with the thread-count override set to `threads`, restoring
/// the previous override afterwards (also on panic).
///
/// Concurrent `with_threads` calls (e.g. parallel test threads) are
/// serialized by an internal mutex, so the override each closure sees is
/// exactly the one it asked for.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    static SCOPE_GUARD: Mutex<()> = Mutex::new(());
    let _serial = lock(&SCOPE_GUARD);

    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.swap(threads, Ordering::Relaxed));
    f()
}

// ---------------------------------------------------------------------
// Worker hooks
// ---------------------------------------------------------------------

/// `(on_start, on_exit)` pair run inside every pool worker.
type WorkerHooks = (fn(), fn());

/// The default slot name used by [`install_worker_hooks`].
const DEFAULT_HOOK_SLOT: &str = "default";

static HOOKS: Mutex<BTreeMap<&'static str, WorkerHooks>> = Mutex::new(BTreeMap::new());

/// Registers hooks run at the start and end of every pool worker thread.
///
/// The start hook runs before the worker takes its first work item; the
/// exit hook runs when the worker is done (including when a work item
/// panics). Replaces any previously installed pair *in the default
/// slot*; independent subsystems should use [`register_worker_hooks`]
/// with their own slot name instead. Plain `fn` pointers keep this
/// registry dependency-free; state travels through process globals on
/// the installer's side.
pub fn install_worker_hooks(on_start: fn(), on_exit: fn()) {
    register_worker_hooks(DEFAULT_HOOK_SLOT, on_start, on_exit);
}

/// Registers a named `(on_start, on_exit)` hook pair, replacing any pair
/// previously registered under the same `slot`.
///
/// Multiple subsystems (trace-sink propagation, the `uvpu-math` buffer
/// pool, …) can each own a slot without clobbering one another. Start
/// hooks run in slot-name order; exit hooks run in reverse slot-name
/// order (including when a work item panics).
pub fn register_worker_hooks(slot: &'static str, on_start: fn(), on_exit: fn()) {
    lock(&HOOKS).insert(slot, (on_start, on_exit));
}

/// Removes the hooks installed via [`install_worker_hooks`] (the default
/// slot only — named slots from [`register_worker_hooks`] stay).
pub fn clear_worker_hooks() {
    lock(&HOOKS).remove(DEFAULT_HOOK_SLOT);
}

/// Removes the hooks registered under `slot`, if any.
pub fn clear_worker_hooks_slot(slot: &'static str) {
    lock(&HOOKS).remove(slot);
}

/// Runs every registered start hook (in slot-name order) and returns a
/// guard that runs the exit hooks in reverse order on drop.
fn enter_worker() -> WorkerGuard {
    let hooks: Vec<WorkerHooks> = lock(&HOOKS).values().copied().collect();
    for (on_start, _) in &hooks {
        on_start();
    }
    WorkerGuard(hooks)
}

struct WorkerGuard(Vec<WorkerHooks>);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        for (_, on_exit) in self.0.iter().rev() {
            on_exit();
        }
    }
}

// ---------------------------------------------------------------------
// Scoped pool
// ---------------------------------------------------------------------

/// A [`std::thread::Scope`] wrapper whose spawned threads run the
/// installed worker hooks (trace-sink propagation) around their body.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker; the installed hooks run on entry/exit.
    pub fn spawn<T, F>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        T: Send + 'scope,
        F: FnOnce() -> T + Send + 'scope,
    {
        self.inner.spawn(move || {
            let _hooks = enter_worker();
            f()
        })
    }
}

/// Scoped-thread entry point: like [`std::thread::scope`], but every
/// thread spawned through the handed-out [`Scope`] runs the installed
/// worker hooks, so globally-installed trace sinks follow the work.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Maps `f` over `0..len` in parallel, returning results in index order.
///
/// Equivalent to `(0..len).map(f).collect()` — bit-exact for any thread
/// count, because each index is processed exactly once and results are
/// placed by index. Runs sequentially when the effective thread count is
/// 1 or `len <= 1`. Panics in `f` propagate to the caller.
pub fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(len, || (), |(), i| f(i))
}

/// Like [`par_map_indexed`], but each worker first builds a private
/// mutable context with `init` (scratch buffers, a scratch VPU, …) that
/// is reused across all indices that worker processes.
///
/// `f` must not let the context influence its *result* — the context is
/// per-worker state, and which worker handles which index is
/// scheduling-dependent.
pub fn par_map_indexed_with<C, R, IF, F>(len: usize, init: IF, f: F) -> Vec<R>
where
    R: Send,
    IF: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> R + Sync,
{
    let threads = max_threads().min(len);
    if threads <= 1 {
        let mut ctx = init();
        return (0..len).map(|i| f(&mut ctx, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let _hooks = enter_worker();
                    let mut ctx = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        out.push((i, f(&mut ctx, i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    for part in parts {
        for (i, r) in part {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

/// [`par_map_indexed`] into a caller-provided buffer: clears `out`,
/// then fills it with `f(0), f(1), …` in index order.
///
/// The sequential path (effective thread count 1, or `len <= 1`)
/// performs **no heap allocation** when `out` already has capacity for
/// `len` results — this is what lets pooled callers like
/// `RnsPoly::mul` reach zero steady-state allocs/op. The parallel path
/// allocates its usual scheduling scaffolding but still places results
/// by index, so the contents of `out` are bit-exact across thread
/// counts.
pub fn par_map_indexed_into<R, F>(len: usize, f: F, out: &mut Vec<R>)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    out.clear();
    if max_threads().min(len) <= 1 {
        out.extend((0..len).map(f));
    } else {
        out.extend(par_map_indexed(len, f));
    }
}

/// Consuming parallel map: moves each element of `items` into `f`
/// exactly once, returning results in the original order.
///
/// The owned-element counterpart of [`par_map_indexed`], for maps like
/// `Poly::to_evaluation` that take `self` by value.
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if max_threads() <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    par_map_indexed(cells.len(), |i| {
        let item = lock(&cells[i]).take().expect("each item taken once");
        f(i, item)
    })
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

const MEMO_SHARDS: usize = 16;

/// One lock-protected shard of a [`Memo`]'s key space.
type Shard<K, V> = Mutex<HashMap<K, Arc<V>>>;

/// A process-wide memo for expensive immutable plans (NTT tables,
/// automorphism decompositions), usable as a `static`.
///
/// Internally a fixed number of `Mutex<HashMap<K, Arc<V>>>` shards
/// selected by key hash, lazily initialized through a [`OnceLock`]. The
/// builder runs *outside* the shard lock, so a slow plan construction
/// never blocks lookups of other keys in the same shard; if two threads
/// race to build the same key, one result wins and both get the same
/// `Arc` afterwards.
pub struct Memo<K, V> {
    shards: OnceLock<Vec<Shard<K, V>>>,
}

impl<K: Hash + Eq + Clone, V> Memo<K, V> {
    /// Creates an empty memo (const, so it can be a `static`).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            shards: OnceLock::new(),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let shards = self.shards.get_or_init(|| {
            (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect()
        });
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &shards[(hasher.finish() as usize) % MEMO_SHARDS]
    }

    /// Returns the cached value for `key`, if present.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        lock(self.shard(key)).get(key).cloned()
    }

    /// Returns the cached value for `key`, building and inserting it
    /// with `build` on a miss. `build` runs without the shard lock held.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is inserted in that case.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: &K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        if let Some(hit) = self.get(key) {
            return Ok(hit);
        }
        let built = Arc::new(build()?);
        let mut shard = lock(self.shard(key));
        Ok(shard.entry(key.clone()).or_insert(built).clone())
    }

    /// Number of cached entries (sums all shards).
    #[must_use]
    pub fn len(&self) -> usize {
        match self.shards.get() {
            None => 0,
            Some(shards) => shards.iter().map(|s| lock(s).len()).sum(),
        }
    }

    /// True if nothing is cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (outstanding `Arc`s stay alive).
    pub fn clear(&self) {
        if let Some(shards) = self.shards.get() {
            for shard in shards {
                lock(shard).clear();
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V> Default for Memo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential_for_every_thread_count() {
        let expect: Vec<u64> = (0..257u64).map(|i| i.wrapping_mul(i) ^ 0xABCD).collect();
        for threads in [1, 2, 4, 7] {
            let got = with_threads(threads, || {
                par_map_indexed(257, |i| (i as u64).wrapping_mul(i as u64) ^ 0xABCD)
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_vec_consumes_each_item_once_in_order() {
        let items: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let expect: Vec<String> = items.iter().map(|s| format!("{s}!")).collect();
        for threads in [1, 3, 8] {
            let got = with_threads(threads, || {
                par_map_vec(items.clone(), |_, s| format!("{s}!"))
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_indexed_into_is_ordered_and_alloc_free_when_sequential() {
        let expect: Vec<usize> = (0..37).map(|i| i * 3).collect();
        for threads in [1, 2, 5] {
            let mut out = Vec::with_capacity(64);
            out.push(usize::MAX); // stale content must be cleared
            with_threads(threads, || {
                par_map_indexed_into(37, |i| i * 3, &mut out);
            });
            assert_eq!(out, expect, "threads = {threads}");
        }
        // Sequential path with sufficient capacity: the buffer is not
        // reallocated (same backing pointer before and after).
        let mut out: Vec<usize> = Vec::with_capacity(37);
        let before = out.as_ptr();
        with_threads(1, || par_map_indexed_into(37, |i| i + 1, &mut out));
        assert_eq!(out.as_ptr(), before, "sequential fill must not realloc");
        assert_eq!(out[36], 37);
    }

    #[test]
    fn per_worker_context_is_reused_not_shared() {
        let out = with_threads(4, || {
            par_map_indexed_with(
                100,
                || 0usize,
                |calls, i| {
                    *calls += 1;
                    i * 2
                },
            )
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn with_threads_restores_previous_override() {
        set_thread_override(Some(3));
        let inner = with_threads(7, max_threads);
        assert_eq!(inner, 7);
        assert_eq!(max_threads(), 3);
        set_thread_override(None);
    }

    #[test]
    fn scope_spawns_run_worker_hooks() {
        static STARTS: AtomicU64 = AtomicU64::new(0);
        static EXITS: AtomicU64 = AtomicU64::new(0);
        fn on_start() {
            STARTS.fetch_add(1, Ordering::Relaxed);
        }
        fn on_exit() {
            EXITS.fetch_add(1, Ordering::Relaxed);
        }
        install_worker_hooks(on_start, on_exit);
        let total = scope(|s| {
            let a = s.spawn(|| 1u64);
            let b = s.spawn(|| 2u64);
            a.join().unwrap() + b.join().unwrap()
        });
        clear_worker_hooks();
        assert_eq!(total, 3);
        assert_eq!(
            STARTS.load(Ordering::Relaxed),
            EXITS.load(Ordering::Relaxed)
        );
        assert!(STARTS.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn named_hook_slots_are_independent() {
        static NAMED: AtomicU64 = AtomicU64::new(0);
        fn named_start() {
            NAMED.fetch_add(1, Ordering::Relaxed);
        }
        fn named_exit() {}
        register_worker_hooks("test-slot", named_start, named_exit);
        scope(|s| s.spawn(|| ()).join().unwrap());
        assert!(NAMED.load(Ordering::Relaxed) >= 1);
        clear_worker_hooks_slot("test-slot");
        let before = NAMED.load(Ordering::Relaxed);
        scope(|s| s.spawn(|| ()).join().unwrap());
        assert_eq!(NAMED.load(Ordering::Relaxed), before);
    }

    #[test]
    fn memo_builds_once_and_shares_the_arc() {
        static CACHE: Memo<(u64, usize), Vec<u64>> = Memo::new();
        let builds = AtomicU64::new(0);
        let a = CACHE
            .get_or_try_insert_with(&(97, 8), || {
                builds.fetch_add(1, Ordering::Relaxed);
                Ok::<_, ()>((0..8u64).collect())
            })
            .unwrap();
        let b = CACHE
            .get_or_try_insert_with(&(97, 8), || {
                builds.fetch_add(1, Ordering::Relaxed);
                Ok::<_, ()>(vec![])
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(CACHE.len(), 1);
        let miss = CACHE.get_or_try_insert_with(&(101, 8), || Err::<Vec<u64>, &str>("boom"));
        assert_eq!(miss.unwrap_err(), "boom");
        assert_eq!(CACHE.len(), 1);
    }

    #[test]
    fn parallel_memo_hits_converge_to_one_value() {
        static CACHE: Memo<u64, u64> = Memo::new();
        let values = with_threads(8, || {
            par_map_indexed(64, |i| {
                let v = CACHE
                    .get_or_try_insert_with(&(i as u64 % 4), || Ok::<_, ()>(i as u64))
                    .unwrap();
                *v
            })
        });
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, values[i % 4], "same key ⇒ same cached value");
        }
        assert_eq!(CACHE.len(), 4);
    }
}
