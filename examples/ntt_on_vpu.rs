//! NTT mapping deep-dive: how a big transform decomposes onto the lanes.
//!
//! For each size, this prints the dimension decomposition, the cycle
//! breakdown (butterfly / element-wise / network-move beats), and the
//! resulting throughput utilization (paper Table III), then cross-checks
//! the output bit-exactly against the golden-model transform.
//!
//! Run with: `cargo run --release --example ntt_on_vpu`

use uvpu::math::modular::Modulus;
use uvpu::math::ntt::naive_cyclic_dft;
use uvpu::math::primes::ntt_prime;
use uvpu::vpu::ntt_map::NttPlan;
use uvpu::vpu::vpu::Vpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 64;
    println!("mapping NTTs onto a {m}-lane unified VPU");
    println!(
        "{:<7} {:<14} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "N", "dims", "butterfly", "ewise", "move", "total", "util"
    );
    println!("{}", "-".repeat(80));
    for log_n in [8u32, 10, 12, 14] {
        let n = 1usize << log_n;
        let q = Modulus::new(ntt_prime(50, n)?)?;
        let plan = NttPlan::new(q, n, m)?;
        let mut vpu = Vpu::new(m, q, 8)?;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 31 + 7).collect();
        let run = plan.execute_forward_negacyclic(&mut vpu, &data)?;
        let dims: Vec<String> = plan.dims().iter().map(ToString::to_string).collect();
        println!(
            "2^{:<5} {:<14} {:>10} {:>10} {:>10} {:>12} {:>7.2}%",
            log_n,
            dims.join("x"),
            run.stats.butterfly,
            run.stats.elementwise,
            run.stats.network_move,
            run.stats.total(),
            100.0 * run.stats.utilization()
        );

        // Cross-check one size in detail against the naive reference.
        if n <= 1 << 10 {
            let cyclic = plan.execute_forward(&mut vpu, &data)?;
            let reduced: Vec<u64> = data.iter().map(|&x| q.reduce_u64(x)).collect();
            let expect = naive_cyclic_dft(&reduced, plan.omega(), &q);
            assert_eq!(cyclic.output, expect, "bit-exact vs the naive DFT");
        }
        // And the round trip.
        let back = plan.execute_inverse_negacyclic(&mut vpu, &run.output)?;
        let reduced: Vec<u64> = data.iter().map(|&x| q.reduce_u64(x)).collect();
        assert_eq!(back.output, reduced, "forward/inverse round trip");
    }
    println!();
    println!("all outputs verified bit-exactly against the golden model.");
    Ok(())
}
