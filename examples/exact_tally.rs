//! Exact encrypted tallying with BFV.
//!
//! CKKS is approximate; for counting and voting you want **exact** modular
//! integer arithmetic. This example runs a private tally: each client
//! encrypts a one-hot ballot across `C` candidate slots; the server sums
//! the ciphertexts, multiplies by an encrypted audit mask, and rotates to
//! align results — all with zero numerical error, demonstrating the
//! paper's claim that BFV is "similarly supported" by the same
//! NTT/automorphism machinery.
//!
//! Run with: `cargo run --release --example exact_tally`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uvpu::bfv::cipher::Evaluator;
use uvpu::bfv::encoder::BatchEncoder;
use uvpu::bfv::keys::KeyGenerator;
use uvpu::bfv::params::BfvParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = BfvParams::new(1 << 7, 50)?;
    let encoder = BatchEncoder::new(&params)?;
    let mut kg = KeyGenerator::new(&params, StdRng::seed_from_u64(5));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk)?;
    let rlk = kg.relin_key(&sk)?;
    let gks = kg.galois_keys(&sk, &[1])?;
    let eval = Evaluator::new(&params);
    let mut rng = StdRng::seed_from_u64(6);

    let candidates = 8usize;
    let voters = 200usize;

    // Each voter submits an encrypted one-hot ballot.
    let mut expected = vec![0u64; candidates];
    let mut tally = None;
    for _ in 0..voters {
        let choice = rng.gen_range(0..candidates);
        expected[choice] += 1;
        let mut ballot = vec![0u64; candidates];
        ballot[choice] = 1;
        let ct = eval.encrypt(&pk, &encoder.encode(&ballot)?, &mut rng)?;
        tally = Some(match tally {
            None => ct,
            Some(acc) => eval.add(&acc, &ct),
        });
    }
    let tally = tally.expect("at least one voter");

    // Server-side audit: weight each slot (e.g. district multiplier) and
    // rotate to produce a shifted view, homomorphically and exactly.
    let weights: Vec<u64> = (0..candidates).map(|c| (c as u64 % 3) + 1).collect();
    let weighted = eval.mul_plain(&tally, &encoder.encode(&weights)?)?;
    let shifted = eval.rotate_rows(&tally, 1, &gks)?;
    let _ = &rlk; // relin key reserved for ciphertext-ciphertext audits

    // Election authority decrypts.
    let counts = encoder.decode(&eval.decrypt(&sk, &tally)?);
    let audited = encoder.decode(&eval.decrypt(&sk, &weighted)?);
    let rotated = encoder.decode(&eval.decrypt(&sk, &shifted)?);

    println!("exact encrypted tally over {voters} voters, {candidates} candidates:");
    println!(
        "{:<10} {:>8} {:>10} {:>10}",
        "candidate", "votes", "weighted", "shifted"
    );
    for c in 0..candidates {
        println!(
            "{:<10} {:>8} {:>10} {:>10}",
            c, counts[c], audited[c], rotated[c]
        );
        assert_eq!(counts[c], expected[c], "tallies must be EXACT");
        assert_eq!(audited[c], expected[c] * weights[c]);
        // Row rotation shifts within the 64-slot row; slots past the
        // candidate block are zero.
        let expect_shift = if c + 1 < candidates {
            expected[c + 1]
        } else {
            0
        };
        assert_eq!(rotated[c], expect_shift);
    }
    println!(
        "noise budget remaining: {:.1} bits",
        eval.noise_budget(&sk, &weighted)?
    );
    println!("ok — all results exact (BFV), rotations via the same automorphism network");
    Ok(())
}
