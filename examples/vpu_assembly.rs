//! Programming the VPU in its assembly language.
//!
//! Kernels for the unified VPU can be written as inspectable text programs
//! instead of API calls: this example assembles a dot-product kernel
//! (element-wise multiply + cross-lane reduction) and a shuffle kernel
//! (automorphism route), executes them, disassembles them back, and prints
//! the pipeline-beat cost of each.
//!
//! Run with: `cargo run --release --example vpu_assembly`

use uvpu::math::modular::Modulus;
use uvpu::vpu::isa::Program;
use uvpu::vpu::vpu::Vpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q = Modulus::new(0x0fff_ffff_fffc_0001)?;
    let mut vpu = Vpu::new(8, q, 16)?;

    // r0 = weights, r1 = activations.
    vpu.load(0, &[3, 1, 4, 1, 5, 9, 2, 6])?;
    vpu.load(1, &[2, 7, 1, 8, 2, 8, 1, 8])?;

    let dot_product = Program::parse(
        "\
# dot(r0, r1) -> broadcast in r3
vmul   r2, r0, r1
reduce r3, r2, r4
",
    )?;
    let stats = dot_product.execute(&mut vpu)?;
    let result = vpu.store(3)?;
    let expect: u64 = [3u64, 1, 4, 1, 5, 9, 2, 6]
        .iter()
        .zip([2u64, 7, 1, 8, 2, 8, 1, 8])
        .map(|(&w, a)| w * a)
        .sum();
    println!("dot-product kernel:");
    print!("{}", dot_product.disassemble());
    println!("  -> {} (expected {expect}) in {stats}", result[0]);
    assert!(result.iter().all(|&x| x == expect));

    // A permutation kernel: route through the automorphism control SRAM.
    let shuffle = Program::parse(
        "\
# apply i -> 5i + 2 (mod 8) in a single network traversal
route r5, r0, auto g=5 t=2
",
    )?;
    let stats = shuffle.execute(&mut vpu)?;
    println!();
    println!("shuffle kernel:");
    print!("{}", shuffle.disassemble());
    println!("  r0 = {:?}", vpu.store(0)?);
    println!("  r5 = {:?}  ({stats})", vpu.store(5)?);
    let map = uvpu::math::automorphism::AffineMap::new(8, 5, 2)?;
    assert_eq!(vpu.store(5)?, map.permute(&vpu.store(0)?));
    println!();
    println!("ok — both kernels verified against the reference semantics");
    Ok(())
}
