//! Private inference: an encrypted linear layer with a square activation.
//!
//! The motivating outsourcing scenario of the paper's introduction: the
//! client encrypts a feature vector; the server evaluates
//! `y = (W·x + b)²` homomorphically — the matrix-vector product runs as a
//! baby-step/giant-step sum of rotations, the exact automorphism-dense
//! kernel the unified VPU accelerates — and never sees any data.
//!
//! Run with: `cargo run --release --example private_inference`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uvpu::ckks::encoder::{Encoder, C64};
use uvpu::ckks::keys::KeyGenerator;
use uvpu::ckks::linear::LinearTransform;
use uvpu::ckks::ops::Evaluator;
use uvpu::ckks::params::{CkksContext, CkksParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = CkksContext::new(CkksParams::new(1 << 6, 4, 40)?)?;
    let encoder = Encoder::new(&ctx);
    let dim = encoder.slot_count(); // a 16-feature layer
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(3));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk)?;
    let rlk = kg.relin_key(&sk)?;
    let eval = Evaluator::new(&ctx);
    let mut rng = StdRng::seed_from_u64(4);

    // Server-side model: a banded weight matrix and a bias.
    let mut weights = vec![vec![C64::default(); dim]; dim];
    for i in 0..dim {
        for d in 0..4 {
            weights[i][(i + d) % dim] = C64::from(rng.gen_range(-0.5..0.5));
        }
    }
    let bias: Vec<C64> = (0..dim)
        .map(|_| C64::from(rng.gen_range(-0.2..0.2)))
        .collect();
    let layer = LinearTransform::from_matrix(&weights);

    let baby = 4;
    let gks = kg.galois_keys(&sk, &layer.required_steps(baby))?;

    // Client-side: encrypt the features.
    let x: Vec<C64> = (0..dim)
        .map(|_| C64::from(rng.gen_range(-1.0..1.0)))
        .collect();
    let ct = eval.encrypt(
        &pk,
        &encoder.encode(&ctx, ctx.params().levels(), &x)?,
        &mut rng,
    )?;

    // Server-side: W·x (BSGS rotations), + b, then the square activation.
    let wx = eval.rescale(&layer.apply(&ctx, &eval, &encoder, &ct, &gks, baby)?)?;
    let b_pt = encoder.encode_at_scale(&ctx, wx.level(), &bias, wx.scale)?;
    let pre_act = eval.add_plain(&wx, &b_pt)?;
    let y_ct = eval.rescale(&eval.mul(&pre_act, &pre_act, &rlk)?)?;

    // Client-side: decrypt and verify against the plaintext model.
    let got = encoder.decode(&ctx, &eval.decrypt(&sk, &y_ct)?);
    let wx_plain = layer.apply_plain(&x);
    println!("private inference: y = (W.x + b)^2 over {dim} encrypted features");
    println!(
        "  layer: {} diagonals, BSGS baby step {baby}, {} rotation keys",
        layer.diagonal_count(),
        layer.required_steps(baby).len()
    );
    let mut max_err: f64 = 0.0;
    for j in 0..dim {
        let expect = (wx_plain[j].re + bias[j].re).powi(2);
        max_err = max_err.max((got[j].re - expect).abs());
        if j < 4 {
            println!("  y[{j}] = {:+.6}  (plaintext {:+.6})", got[j].re, expect);
        }
    }
    println!("  max error across all {dim} outputs: {max_err:.2e}");
    assert!(max_err < 1e-2, "inference must match the plaintext model");
    println!("  ok — server never saw features, weights applied privately");
    Ok(())
}
