//! Encrypted statistics: mean and variance of a private data vector.
//!
//! The cloud receives only ciphertexts, computes `mean(x)` and `var(x)`
//! with rotate-and-add reductions (HRot is the paper's automorphism
//! workload), and returns encrypted results the client decrypts.
//!
//! Run with: `cargo run --release --example encrypted_statistics`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uvpu::ckks::ciphertext::Ciphertext;
use uvpu::ckks::encoder::{Encoder, C64};
use uvpu::ckks::keys::{GaloisKeys, KeyGenerator};
use uvpu::ckks::ops::Evaluator;
use uvpu::ckks::params::{CkksContext, CkksParams};
use uvpu::ckks::CkksError;

/// Rotate-and-add tree: leaves the sum of all `count` slots in slot 0
/// (and every other slot, since the reduction is cyclic).
fn reduce_sum(
    eval: &Evaluator<'_>,
    ct: &Ciphertext,
    gks: &GaloisKeys,
    count: usize,
) -> Result<Ciphertext, CkksError> {
    let mut acc = ct.clone();
    let mut step = 1usize;
    while step < count {
        let rotated = eval.rotate(&acc, step as i64, gks)?;
        acc = eval.add(&acc, &rotated)?;
        step *= 2;
    }
    Ok(acc)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = CkksContext::new(CkksParams::new(1 << 8, 4, 40)?)?;
    let encoder = Encoder::new(&ctx);
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(1));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk)?;
    let rlk = kg.relin_key(&sk)?;
    let eval = Evaluator::new(&ctx);
    let mut rng = StdRng::seed_from_u64(2);

    // The client's private measurements fill all slots.
    let count = encoder.slot_count(); // 128 data points
    let data: Vec<f64> = (0..count).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let slots: Vec<C64> = data.iter().map(|&x| C64::from(x)).collect();
    // The reduction doubles slot usage; powers of two keep it exact.
    let steps: Vec<i64> = (0..)
        .map(|k| 1i64 << k)
        .take_while(|&s| (s as usize) < count)
        .collect();
    let gks = kg.galois_keys(&sk, &steps)?;

    let ct = eval.encrypt(
        &pk,
        &encoder.encode(&ctx, ctx.params().levels(), &slots)?,
        &mut rng,
    )?;

    // mean = Σx / n  (the 1/n fold is a plaintext multiplication).
    let total = reduce_sum(&eval, &ct, &gks, count)?;
    let inv_n = encoder.encode(
        &ctx,
        total.level(),
        &vec![C64::from(1.0 / count as f64); count],
    )?;
    let mean_ct = eval.rescale(&eval.mul_plain(&total, &inv_n)?)?;

    // var = Σx² / n − mean².
    let sq = eval.rescale(&eval.mul(&ct, &ct, &rlk)?)?;
    let sq_total = reduce_sum(&eval, &sq, &gks, count)?;
    let inv_n2 = encoder.encode(
        &ctx,
        sq_total.level(),
        &vec![C64::from(1.0 / count as f64); count],
    )?;
    let mean_sq_ct = eval.rescale(&eval.mul_plain(&sq_total, &inv_n2)?)?;
    let mean2_ct = eval.rescale(&eval.mul(&mean_ct, &mean_ct, &rlk)?)?;
    let var_ct = eval.sub(&mean_sq_ct, &mean2_ct)?;

    // The client decrypts.
    let mean = encoder.decode(&ctx, &eval.decrypt(&sk, &mean_ct)?)[0].re;
    let var = encoder.decode(&ctx, &eval.decrypt(&sk, &var_ct)?)[0].re;

    let true_mean = data.iter().sum::<f64>() / count as f64;
    let true_var = data.iter().map(|x| (x - true_mean).powi(2)).sum::<f64>() / count as f64;
    println!("encrypted statistics over {count} private samples:");
    println!(
        "  mean: {mean:.6}  (plaintext {true_mean:.6}, err {:.2e})",
        (mean - true_mean).abs()
    );
    println!(
        "  var : {var:.6}  (plaintext {true_var:.6}, err {:.2e})",
        (var - true_var).abs()
    );
    assert!((mean - true_mean).abs() < 1e-2);
    assert!((var - true_var).abs() < 1e-1);
    println!("  ok — errors within CKKS approximation bounds");
    Ok(())
}
