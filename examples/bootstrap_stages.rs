//! Bootstrapping's linear stages: the factorized homomorphic DFT.
//!
//! CKKS bootstrapping spends most of its time in CoeffToSlot /
//! SlotToCoeff — homomorphic evaluations of the encoding DFT. This
//! example runs the radix-2 factorized homomorphic DFT (3 diagonals ×
//! log₂ s stages instead of a dense s-diagonal matrix) and contrasts the
//! rotation traffic of the two approaches — the traffic the paper's
//! automorphism hardware is built for. It also demonstrates **hoisted
//! rotations**, which share one keyswitch digit decomposition across all
//! baby-step rotations.
//!
//! Run with: `cargo run --release --example bootstrap_stages`

use rand::rngs::StdRng;
use rand::SeedableRng;
use uvpu::ckks::bootstrap::{apply_stages_plain, dft_stages, HomomorphicDft};
use uvpu::ckks::encoder::{Encoder, C64};
use uvpu::ckks::keys::KeyGenerator;
use uvpu::ckks::ops::Evaluator;
use uvpu::ckks::params::{CkksContext, CkksParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = CkksContext::new(CkksParams::new(1 << 5, 5, 40)?)?;
    let encoder = Encoder::new(&ctx);
    let slots = encoder.slot_count(); // 16
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(9));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk)?;
    let eval = Evaluator::new(&ctx);
    let mut rng = StdRng::seed_from_u64(10);

    let hdft = HomomorphicDft::new(&ctx, 2);
    println!("factorized homomorphic DFT over {slots} slots:");
    println!(
        "  {} stages x <=3 diagonals = {} rotations of traffic (dense matrix: {slots} diagonals)",
        hdft.depth(),
        hdft.diagonal_count()
    );
    println!(
        "  consumes {} of {} levels",
        hdft.depth(),
        ctx.params().levels()
    );

    let gks = kg.galois_keys(&sk, &hdft.required_steps())?;
    let x: Vec<C64> = (0..slots)
        .map(|j| C64::new((j as f64 * 0.7).sin(), 0.1))
        .collect();
    let ct = eval.encrypt(
        &pk,
        &encoder.encode(&ctx, ctx.params().levels(), &x)?,
        &mut rng,
    )?;

    let out_ct = hdft.apply(&ctx, &eval, &encoder, &ct, &gks)?;
    let got = encoder.decode(&ctx, &eval.decrypt(&sk, &out_ct)?);
    let expect = apply_stages_plain(&dft_stages(slots), &x);
    let max_err = got
        .iter()
        .zip(&expect)
        .map(|(a, b)| (a.re - b.re).abs().max((a.im - b.im).abs()))
        .fold(0.0f64, f64::max);
    println!("  homomorphic vs plain DFT max error: {max_err:.2e}");
    assert!(max_err < 5e-2);

    // Hoisted rotations: one digit decomposition, many rotations.
    let steps = [1i64, 2, 3];
    let gks2 = kg.galois_keys(&sk, &steps)?;
    let hoisted = eval.rotate_hoisted(&ct, &steps, &gks2)?;
    for (i, &step) in steps.iter().enumerate() {
        let single = eval.rotate(&ct, step, &gks2)?;
        assert_eq!(hoisted[i], single, "hoisting is exact");
    }
    println!(
        "  hoisted {} rotations from one digit decomposition — bit-identical to individual HRots",
        steps.len()
    );
    println!("ok");
    Ok(())
}
