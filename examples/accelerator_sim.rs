//! Accelerator-scale simulation: an FHE workload on the Fig 1(a) system.
//!
//! Runs a mixed HAdd/HMult/HRot trace across accelerator configurations
//! with 1–16 VPUs and reports the makespan scaling, NoC traffic, and
//! VPU utilization.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use uvpu::accel::config::AcceleratorConfig;
use uvpu::accel::machine::Accelerator;
use uvpu::accel::workload::FheOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1usize << 12;
    let limbs = 3;
    // A small encrypted-inference-shaped trace: products, rotations, adds.
    let workload: Vec<FheOp> = vec![
        FheOp::HMult { n, limbs },
        FheOp::HRot { n, limbs },
        FheOp::HRot { n, limbs },
        FheOp::HAdd { n, limbs },
        FheOp::HMult { n, limbs },
        FheOp::HRot { n, limbs },
        FheOp::HAdd { n, limbs },
    ];

    println!(
        "FHE trace: {} ops at N = 2^12, {limbs} RNS limbs",
        workload.len()
    );
    println!(
        "{:<6} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "VPUs", "makespan", "speedup", "NoC cycles", "SRAM bytes", "util"
    );
    println!("{}", "-".repeat(68));
    let mut base = None;
    for vpus in [1usize, 2, 4, 8, 16] {
        let cfg = AcceleratorConfig {
            vpu_count: vpus,
            ..AcceleratorConfig::default()
        };
        let mut accel = Accelerator::new(cfg)?;
        let report = accel.run(&workload)?;
        let baseline = *base.get_or_insert(report.makespan);
        println!(
            "{:<6} {:>12} {:>9.2}x {:>12} {:>12} {:>7.1}%",
            vpus,
            report.makespan,
            baseline as f64 / report.makespan as f64,
            report.noc_cycles,
            report.sram_traffic_bytes,
            100.0 * report.vpu_utilization()
        );
    }
    println!();
    println!(
        "the workload decomposes along the RNS dimension; keyswitch digit products dominate,\n\
         so speedup tracks the VPU count until the task list is shorter than the machine."
    );
    Ok(())
}
