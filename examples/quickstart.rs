//! Quickstart: the full stack in one file.
//!
//! 1. Encrypt a vector with the self-contained CKKS scheme.
//! 2. Add, multiply, and rotate it homomorphically.
//! 3. Map the underlying NTT and automorphism kernels onto the unified
//!    VPU and print the cycle/utilization numbers the paper reports.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use uvpu::ckks::encoder::{Encoder, C64};
use uvpu::ckks::keys::KeyGenerator;
use uvpu::ckks::ops::Evaluator;
use uvpu::ckks::params::{CkksContext, CkksParams};
use uvpu::math::{modular::Modulus, primes::ntt_prime};
use uvpu::vpu::auto_map::AutomorphismMapping;
use uvpu::vpu::ntt_map::NttPlan;
use uvpu::vpu::vpu::Vpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. CKKS: encrypt, compute, decrypt --------------------------
    let ctx = CkksContext::new(CkksParams::new(1 << 8, 3, 40)?)?;
    let encoder = Encoder::new(&ctx);
    let mut kg = KeyGenerator::new(&ctx, StdRng::seed_from_u64(42));
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk)?;
    let rlk = kg.relin_key(&sk)?;
    let gks = kg.galois_keys(&sk, &[1])?;
    let eval = Evaluator::new(&ctx);
    let mut rng = StdRng::seed_from_u64(7);

    let xs: Vec<C64> = (0..8).map(|j| C64::from(j as f64)).collect();
    let ct = eval.encrypt(&pk, &encoder.encode(&ctx, 3, &xs)?, &mut rng)?;

    let doubled = eval.add(&ct, &ct)?;
    let squared = eval.rescale(&eval.mul(&ct, &ct, &rlk)?)?;
    let rotated = eval.rotate(&ct, 1, &gks)?;

    let show = |label: &str, ct: &uvpu::ckks::ciphertext::Ciphertext| {
        let vals = encoder.decode(&ctx, &eval.decrypt(&sk, ct).expect("decrypt"));
        println!(
            "{label:<10} -> [{:.2}, {:.2}, {:.2}, {:.2}, ...]",
            vals[0].re, vals[1].re, vals[2].re, vals[3].re
        );
    };
    println!(
        "CKKS over N = {}, {} levels:",
        ctx.params().n(),
        ctx.params().levels()
    );
    show("x", &ct);
    show("x + x", &doubled);
    show("x * x", &squared);
    show("rot(x, 1)", &rotated);

    // ---- 2. The same kernels on the unified VPU ----------------------
    let (n, m) = (1usize << 12, 64usize);
    let q = Modulus::new(ntt_prime(50, n)?)?;
    let mut vpu = Vpu::new(m, q, 64)?;

    let plan = NttPlan::new(q, n, m)?;
    let poly: Vec<u64> = (0..n as u64).collect();
    let ntt = plan.execute_forward_negacyclic(&mut vpu, &poly)?;
    println!();
    println!(
        "VPU NTT (N = 2^12, dims {:?}): {} — paper Table III reports 85.14%",
        plan.dims(),
        ntt.stats
    );

    let auto = AutomorphismMapping::new(n, m, 5, 0)?.execute(&mut vpu, &ntt.output)?;
    println!(
        "VPU automorphism: {} network passes for {} columns -> {:.0}% utilization (always 100%)",
        auto.stats.network_move,
        n / m,
        100.0 * auto.utilization()
    );
    Ok(())
}
